"""The durable write-ahead delta log of the live miner.

One append batch = one segment file ``wal/delta-<seq>.json`` written
through :meth:`repro.runtime.storage.Storage.atomic_write_text`
(write-temp + fsync + atomic rename + parent-dir fsync), so segment
*existence* is the commit marker: a crash at any storage operation
leaves either the previous committed prefix or the next one, never a
torn segment.

Exactly-once application falls out of the sequence discipline:

- batches carry client-assigned monotonic sequence numbers starting
  at 1;
- the *watermark* is the largest contiguous committed sequence,
  recomputed from the directory listing on every open (no separate
  pointer file to desync);
- re-submitting a committed sequence is a no-op answered with an
  explicit ``duplicate`` status — after verifying the payload matches
  the committed bytes (:class:`DeltaMismatch` otherwise, because a
  client re-using a sequence number for *different* rows is data
  corruption, not a retry);
- a sequence beyond ``watermark + 1`` is rejected with
  :class:`OutOfOrderDelta` so a gap can never be committed.

Segments are chained by SHA-256 (each records the previous segment's
digest), giving restarts a fingerprint to verify a snapshot against;
a mismatch is an invariant breach that forces the degradation ladder
(see :mod:`repro.live.miner`) rather than silent wrongness.

Segments are retained indefinitely — they are the replay source for
exact re-admission counts and for the journalled full re-mine.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runtime.storage import LOCAL_STORAGE, Storage

SEGMENT_VERSION = 1
SEGMENT_PREFIX = "delta-"
SEGMENT_SUFFIX = ".json"
SEGMENT_DIGITS = 8

#: Chain digest of the empty log (sequence 0).
GENESIS_SHA = hashlib.sha256(b"dmc-live-wal-genesis").hexdigest()


class DeltaLogError(ValueError):
    """Base class of every typed delta-log rejection."""


class OutOfOrderDelta(DeltaLogError):
    """A submitted sequence number would leave a gap in the log."""

    def __init__(self, seq: int, expected: int) -> None:
        super().__init__(
            f"delta seq {seq} is out of order: the next committable "
            f"sequence is {expected}"
        )
        self.seq = seq
        self.expected = expected


class DeltaMismatch(DeltaLogError):
    """A committed sequence was re-submitted with different rows."""

    def __init__(self, seq: int) -> None:
        super().__init__(
            f"delta seq {seq} is already committed with different "
            f"rows; sequence numbers must never be re-used"
        )
        self.seq = seq


@dataclass(frozen=True)
class AppendResult:
    """Outcome of one :meth:`DeltaLog.append`."""

    seq: int
    #: ``committed`` for a fresh append, ``duplicate`` for the
    #: idempotent no-op re-submit of an already-committed sequence.
    status: str
    watermark: int
    rows: int

    @property
    def duplicate(self) -> bool:
        return self.status == "duplicate"


def _normalize_rows(rows: Sequence[Sequence[str]]) -> List[List[str]]:
    normalized = []
    for row in rows:
        if isinstance(row, (str, bytes)):
            raise DeltaLogError(
                "each delta row must be a list of labels, not a string"
            )
        normalized.append([str(label) for label in row])
    return normalized


def _rows_digest(prev_sha: str, rows: List[List[str]]) -> str:
    payload = json.dumps(rows, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(
        prev_sha.encode("ascii") + b"\n" + payload
    ).hexdigest()


class DeltaLog:
    """The append-only, crash-consistent delta log of one live run."""

    def __init__(self, root: str, storage: Optional[Storage] = None) -> None:
        self.root = str(root)
        self.storage = storage if storage is not None else LOCAL_STORAGE
        self.storage.makedirs(self.root)
        self._sha_cache: Dict[int, str] = {0: GENESIS_SHA}
        self._watermark = self._scan_watermark()

    # -- layout --------------------------------------------------------

    def segment_path(self, seq: int) -> str:
        name = f"{SEGMENT_PREFIX}{seq:0{SEGMENT_DIGITS}d}{SEGMENT_SUFFIX}"
        return os.path.join(self.root, name)

    def _scan_watermark(self) -> int:
        seqs = set()
        for name in self.storage.listdir(self.root):
            if not (
                name.startswith(SEGMENT_PREFIX)
                and name.endswith(SEGMENT_SUFFIX)
            ):
                continue
            stem = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
            try:
                seqs.add(int(stem))
            except ValueError:
                continue
        watermark = 0
        while watermark + 1 in seqs:
            watermark += 1
        return watermark

    @property
    def watermark(self) -> int:
        """Largest contiguous committed sequence (0 for an empty log)."""
        return self._watermark

    # -- reads ---------------------------------------------------------

    def _load(self, seq: int) -> Tuple[List[List[str]], str]:
        with self.storage.open(
            self.segment_path(seq), "r", encoding="utf-8"
        ) as handle:
            document = json.load(handle)
        if document.get("seq") != seq:
            raise DeltaLogError(
                f"segment {seq} carries wrong sequence "
                f"{document.get('seq')!r}"
            )
        rows = document["rows"]
        sha = str(document["sha"])
        self._sha_cache[seq] = sha
        return rows, sha

    def read(self, seq: int) -> List[List[str]]:
        """The rows of one committed segment."""
        if not 1 <= seq <= self._watermark:
            raise DeltaLogError(
                f"segment {seq} is not committed (watermark "
                f"{self._watermark})"
            )
        return self._load(seq)[0]

    def chain_sha(self, seq: int) -> str:
        """The chain digest as of ``seq`` (``seq=0`` is the genesis)."""
        if seq == 0:
            return GENESIS_SHA
        cached = self._sha_cache.get(seq)
        if cached is not None:
            return cached
        return self._load(seq)[1]

    def iter_rows(
        self, upto: Optional[int] = None
    ) -> Iterator[Tuple[int, List[List[str]]]]:
        """Yield ``(seq, rows)`` for every committed segment up to
        ``upto`` (default: the watermark) — the replay source."""
        last = self._watermark if upto is None else min(upto, self._watermark)
        for seq in range(1, last + 1):
            yield seq, self._load(seq)[0]

    # -- append --------------------------------------------------------

    def append(
        self, seq: int, rows: Sequence[Sequence[str]]
    ) -> AppendResult:
        """Durably commit one batch; exactly-once by sequence number."""
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
            raise DeltaLogError(
                f"delta seq must be a positive integer, got {seq!r}"
            )
        normalized = _normalize_rows(rows)
        if seq <= self._watermark:
            committed, committed_sha = self._load(seq)
            offered = _rows_digest(self.chain_sha(seq - 1), normalized)
            if offered != committed_sha or committed != normalized:
                raise DeltaMismatch(seq)
            return AppendResult(
                seq=seq, status="duplicate",
                watermark=self._watermark, rows=len(normalized),
            )
        if seq != self._watermark + 1:
            raise OutOfOrderDelta(seq, self._watermark + 1)
        sha = _rows_digest(self.chain_sha(seq - 1), normalized)
        document = {
            "version": SEGMENT_VERSION,
            "seq": seq,
            "sha": sha,
            "rows": normalized,
        }
        # The atomic write is the commit point: after its rename +
        # dir-fsync the segment exists durably, before it nothing does.
        self.storage.atomic_write_text(
            self.segment_path(seq),
            json.dumps(document, separators=(",", ":")),
        )
        self._watermark = seq
        self._sha_cache[seq] = sha
        return AppendResult(
            seq=seq, status="committed",
            watermark=seq, rows=len(normalized),
        )

    def total_bytes(self) -> int:
        """Retained WAL bytes (all committed segments)."""
        total = 0
        for seq in range(1, self._watermark + 1):
            try:
                total += self.storage.getsize(self.segment_path(seq))
            except OSError:
                pass
        return total


class SnapshotStore:
    """Durable state snapshots, atomically replaced, never required.

    A snapshot is pure optimization: recovery without one replays the
    whole WAL through the same deterministic apply path.  ``load``
    therefore treats anything unreadable as *absent* — the caller
    falls back to a full replay — while a snapshot that parses but
    contradicts the WAL chain digest is reported as a mismatch so the
    miner can take the journalled degradation path.
    """

    FILENAME = "snapshot.json"

    def __init__(self, root: str, storage: Optional[Storage] = None) -> None:
        self.root = str(root)
        self.storage = storage if storage is not None else LOCAL_STORAGE
        self.storage.makedirs(self.root)
        self.path = os.path.join(self.root, self.FILENAME)

    def save(self, document: Dict[str, object]) -> None:
        self.storage.atomic_write_text(
            self.path, json.dumps(document, separators=(",", ":"))
        )

    def load(self) -> Optional[Dict[str, object]]:
        if not self.storage.exists(self.path):
            return None
        try:
            with self.storage.open(
                self.path, "r", encoding="utf-8"
            ) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        return document if isinstance(document, dict) else None
