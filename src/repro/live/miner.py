"""The long-lived incremental miner over the write-ahead delta log.

:class:`LiveMiner` accepts row-append batches (through
:meth:`LiveMiner.submit` or an externally-driven
:meth:`~LiveMiner.commit` + :meth:`~LiveMiner.apply_committed` split)
and keeps, at every committed sequence, a rule set *byte-identical*
to a full re-mine of the concatenated data.  The state it carries
between batches is the complete, lossless form of the DMC counters
(see :mod:`repro.core.incremental`):

- ``ones[c]`` per column and the exact ``hits`` of every *tracked*
  pair — from which every miss counter, budget and confidence
  re-derives exactly;
- a compact :class:`~repro.core.incremental.RetiredPair` snapshot for
  every pair pruned below threshold, anchoring the Section 5.2
  optimistic bound that decides re-admission.

Each committed batch is applied in four deterministic steps: count
the batch (new pairs enter tracking at their first-ever
co-occurrence, so their counts are exact by construction);
re-admission — for retired pairs with a column the delta touched,
test :func:`~repro.core.incremental.readmission_required` and, only
when the Fraction math says a rule became possible, recount the exact
hits of the flagged pairs in one replay over the retained WAL rows;
retirement — prune tracked pairs the delta pushed below threshold,
snapshotting their exact state; emission — rebuild the rule set and
diff it against the previous one (``rule-appear`` /
``rule-disappear`` journal events via :mod:`repro.mining.diff`).

Everything is deterministic from the WAL alone, which is the whole
crash story: recovery loads the latest snapshot (verified against
the WAL's chain digest), replays the remaining segments through the
identical apply path, and lands in the identical state — proven by
crash-point enumeration over every storage operation in the tests.

Degradation ladder: when a re-admission replay would exceed the
configured ``replay_budget_rows``, or a snapshot contradicts the WAL
fingerprint (or its column universe), the miner performs a
*journalled full re-mine* — a single exact pass over every retained
WAL row that rebuilds the entire state — rather than ever emitting a
rule set that could differ from the oracle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.incremental import (
    RetiredPair, canonical_pair, pair_alive, pair_rule,
    readmission_required,
)
from repro.core.rules import RuleSet
from repro.core.thresholds import as_fraction, max_misses, pair_max_misses
from repro.live.wal import AppendResult, DeltaLog, SnapshotStore
from repro.mining.diff import diff_rules
from repro.runtime.storage import LOCAL_STORAGE, Storage

SNAPSHOT_VERSION = 1

Pair = Tuple[int, int]


@dataclass(frozen=True)
class DeltaReceipt:
    """What one submitted batch did to the live state."""

    seq: int
    #: ``committed`` (fresh batch, now applied), ``duplicate``
    #: (idempotent re-submit of a committed sequence).
    status: str
    watermark: int
    applied_seq: int
    rows: int
    #: Rule churn of this batch (both zero for a duplicate).
    appeared: int = 0
    disappeared: int = 0
    changed: int = 0
    n_rules: int = 0
    #: Pairs brought back to exact tracking by a re-admission replay.
    readmitted: int = 0
    #: WAL rows scanned by the re-admission recount (0 = no replay).
    replayed_rows: int = 0
    #: Degradation taken while applying (None = none).
    degraded: Optional[str] = None
    #: True when the apply happened during recovery replay.
    recovered: bool = False


class LiveMiner:
    """One continuously-updated mining run rooted at a directory.

    ``root`` gains two subdirectories: ``wal/`` (the delta segments)
    and ``state/`` (periodic snapshots).  All durable I/O routes
    through ``storage`` so the crash-point harness can enumerate it.

    ``journal`` (optional :class:`~repro.observe.journal.RunJournal`)
    receives ``delta-commit`` / ``delta-applied`` / ``rule-appear`` /
    ``rule-disappear`` / ``live-degrade`` / ``live-open`` events, each
    merged with ``journal_extra`` (the service adds ``job_id``).

    ``replay_budget_rows``: a re-admission replay over more retained
    rows than this degrades to the journalled full re-mine instead
    (None = always replay exactly).

    ``tracer`` (optional :class:`~repro.observe.tracer.Tracer`)
    records one ``delta-apply`` span per applied batch — carrying the
    tracer's ``trace_id``, so live spans join the same end-to-end
    trace as a batch job's attempt spans.
    """

    def __init__(
        self,
        root: str,
        task: str,
        threshold,
        *,
        storage: Optional[Storage] = None,
        journal=None,
        journal_extra: Optional[Dict[str, object]] = None,
        status=None,
        tracer=None,
        snapshot_every: int = 4,
        replay_budget_rows: Optional[int] = None,
    ) -> None:
        if task not in ("implication", "similarity"):
            raise ValueError(
                f"task must be 'implication' or 'similarity', got {task!r}"
            )
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.root = str(root)
        self.task = task
        self.threshold = as_fraction(threshold)
        self.storage = storage if storage is not None else LOCAL_STORAGE
        self.journal = journal
        self.journal_extra = dict(journal_extra or {})
        self.status = status
        self.tracer = tracer
        self.snapshot_every = snapshot_every
        self.replay_budget_rows = replay_budget_rows
        self.log = DeltaLog(
            os.path.join(self.root, "wal"), storage=self.storage
        )
        self.snapshots = SnapshotStore(
            os.path.join(self.root, "state"), storage=self.storage
        )
        # -- carried counters (see module docstring) -------------------
        self._labels: List[str] = []
        self._ids: Dict[str, int] = {}
        self._ones: List[int] = []
        self._n_rows = 0
        self._tracked: Dict[Pair, int] = {}
        self._retired: Dict[Pair, RetiredPair] = {}
        self._retired_by_col: Dict[int, Set[Pair]] = {}
        self._rules = RuleSet()
        self.applied_seq = 0
        # -- cumulative run statistics ---------------------------------
        self.readmissions_total = 0
        self.replays_total = 0
        self.replayed_rows_total = 0
        self.degrades_total = 0
        self.recover()

    # -- telemetry -----------------------------------------------------

    def _journal(self, event: str, **payload) -> None:
        if self.journal is not None:
            merged = dict(self.journal_extra)
            merged.update(payload)
            self.journal.emit(event, **merged)

    def _publish_status(self) -> None:
        if self.status is None:
            return
        self.status.rows_scanned = self._n_rows
        self.status.rules_emitted = len(self._rules)
        self.status.live_candidates = len(self._tracked)
        self.status.set_phase("live")
        self.status.set_live(
            watermark=self.log.watermark,
            applied_seq=self.applied_seq,
            n_rows=self._n_rows,
            n_columns=len(self._labels),
            tracked_pairs=len(self._tracked),
            retired_pairs=len(self._retired),
            n_rules=len(self._rules),
            readmissions_total=self.readmissions_total,
            replays_total=self.replays_total,
            replayed_rows_total=self.replayed_rows_total,
            degrades_total=self.degrades_total,
        )

    # -- public views --------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._labels)

    def rules(self) -> RuleSet:
        """The current rule set — exactly a full re-mine's."""
        return self._rules

    def vocabulary(self):
        """Labels in first-appearance order (the full re-mine's ids)."""
        from repro.matrix.binary_matrix import Vocabulary

        return Vocabulary(self._labels)

    def export_pair_store(self):
        """The tracked state as a :class:`~repro.core.candidates.
        PairStore` — the carried-forward miss counters and budgets in
        the batch engines' struct-of-arrays layout."""
        import numpy as np

        from repro.core.candidates import PairStore

        owners, cands, misses, budgets = [], [], [], []
        for (a, b), hits in sorted(self._tracked.items()):
            first, second = canonical_pair(self._ones, a, b)
            owners.append(first)
            cands.append(second)
            misses.append(self._ones[first] - hits)
            if self.task == "implication":
                budgets.append(max_misses(self._ones[first], self.threshold))
            else:
                budgets.append(
                    pair_max_misses(
                        self._ones[first], self._ones[second], self.threshold
                    )
                )
        store = PairStore()
        store.append(
            np.asarray(owners, dtype=np.int64),
            np.asarray(cands, dtype=np.int64),
            np.asarray(misses, dtype=np.int64),
            np.asarray(budgets, dtype=np.int64),
        )
        return store

    # -- ingestion -----------------------------------------------------

    def commit(self, seq: int, rows: Sequence[Sequence[str]]) -> AppendResult:
        """Durably commit one batch without applying it (the service's
        fast path; :meth:`apply_committed` catches the state up)."""
        result = self.log.append(seq, rows)
        if result.status == "committed":
            self._journal("delta-commit", seq=seq, rows=result.rows)
            if self.status is not None:
                self.status.set_live(watermark=self.log.watermark)
        return result

    def submit(self, seq: int, rows: Sequence[Sequence[str]]) -> DeltaReceipt:
        """Commit one batch and apply everything committed: the
        synchronous ingestion path.  Exactly-once: re-submitting a
        committed sequence returns a ``duplicate`` receipt and changes
        nothing."""
        result = self.commit(seq, rows)
        receipts = self.apply_committed()
        for receipt in receipts:
            if receipt.seq == seq:
                if result.duplicate:  # pragma: no cover — defensive
                    receipt = DeltaReceipt(
                        **{**receipt.__dict__, "status": "duplicate"}
                    )
                return receipt
        return DeltaReceipt(
            seq=seq, status=result.status, watermark=self.log.watermark,
            applied_seq=self.applied_seq, rows=result.rows,
            n_rules=len(self._rules),
        )

    def apply_committed(self, recovered: bool = False) -> List[DeltaReceipt]:
        """Apply every committed-but-unapplied segment, in order."""
        receipts = []
        while self.applied_seq < self.log.watermark:
            seq = self.applied_seq + 1
            rows = self.log.read(seq)
            if self.tracer is not None:
                with self.tracer.span(
                    "delta-apply", seq=seq, rows=len(rows),
                    trace_id=self.tracer.trace_id, recovered=recovered,
                ) as span:
                    receipt = self._apply_batch(seq, rows, recovered)
                span.attributes.update(
                    appeared=receipt.appeared,
                    disappeared=receipt.disappeared,
                    readmitted=receipt.readmitted,
                    n_rules=receipt.n_rules,
                )
            else:
                receipt = self._apply_batch(seq, rows, recovered)
            receipts.append(receipt)
        return receipts

    # -- the four-step apply -------------------------------------------

    def _row_ids(self, row: Sequence[str]) -> List[int]:
        """Map one row's labels to ids (first-appearance assignment,
        exactly :meth:`BinaryMatrix.from_transactions`'s), deduped and
        sorted like the matrix normalizes rows."""
        ids = []
        for label in row:
            label = str(label)
            column = self._ids.get(label)
            if column is None:
                column = len(self._labels)
                self._ids[label] = column
                self._labels.append(label)
                self._ones.append(0)
            ids.append(column)
        return sorted(set(ids))

    def _retire(self, pair: Pair, snapshot: RetiredPair) -> None:
        self._retired[pair] = snapshot
        for column in pair:
            self._retired_by_col.setdefault(column, set()).add(pair)

    def _unretire(self, pair: Pair) -> None:
        del self._retired[pair]
        for column in pair:
            members = self._retired_by_col.get(column)
            if members is not None:
                members.discard(pair)
                if not members:
                    del self._retired_by_col[column]

    def _emit_rules(self) -> RuleSet:
        rules = RuleSet()
        for (a, b), hits in self._tracked.items():
            rule = pair_rule(
                self.task, self.threshold, self._ones, a, b, hits
            )
            if rule is not None:
                rules.add(rule)
        return rules

    def _apply_batch(
        self, seq: int, rows: List[List[str]], recovered: bool
    ) -> DeltaReceipt:
        before = self._rules
        # Step 1: count the batch.  A pair neither tracked nor retired
        # is co-occurring for the first time ever, so starting its
        # count inside this batch is exact.
        touched: Set[int] = set()
        for row in rows:
            ids = self._row_ids(row)
            self._n_rows += 1
            for column in ids:
                self._ones[column] += 1
            touched.update(ids)
            for x in range(len(ids)):
                for y in range(x + 1, len(ids)):
                    pair = (ids[x], ids[y])
                    if pair in self._retired:
                        continue  # bounded by the retirement snapshot
                    self._tracked[pair] = self._tracked.get(pair, 0) + 1

        # Step 2: re-admission.  Only pairs with a touched column can
        # have moved — an untouched pair's ones, hits and budgets are
        # all unchanged — and only those whose optimistic bound now
        # crosses the threshold need their exact count re-established.
        candidates: Set[Pair] = set()
        for column in touched:
            candidates.update(self._retired_by_col.get(column, ()))
        flagged = [
            pair
            for pair in sorted(candidates)
            if readmission_required(
                self.task, self.threshold, self._retired[pair],
                self._ones[pair[0]], self._ones[pair[1]],
            )
        ]
        readmitted = 0
        replayed_rows = 0
        degraded: Optional[str] = None
        if flagged and (
            self.replay_budget_rows is not None
            and self._n_rows > self.replay_budget_rows
        ):
            degraded = "replay-budget"
            self._rebuild_from_log(
                upto=seq,
                reason=(
                    f"re-admission replay of {len(flagged)} pair(s) "
                    f"over {self._n_rows} rows exceeds the "
                    f"{self.replay_budget_rows}-row budget"
                ),
            )
        elif flagged:
            counts, replayed_rows = self._recount(flagged, upto=seq)
            for pair in flagged:
                hits = counts[pair]
                a, b = pair
                self._unretire(pair)
                if pair_alive(
                    self.task, self.threshold,
                    self._ones[a], self._ones[b], hits,
                ):
                    self._tracked[pair] = hits
                    readmitted += 1
                else:
                    # Spurious flag: re-retire with a fresh snapshot,
                    # which tightens the bound for future deltas.
                    self._retire(
                        pair,
                        RetiredPair(hits, self._ones[a], self._ones[b]),
                    )
            self.readmissions_total += readmitted

        # Step 3: retirement (skipped after a rebuild, which already
        # partitioned every pair against the current threshold math).
        if degraded is None:
            for pair in [
                p for p in self._tracked
                if p[0] in touched or p[1] in touched
            ]:
                a, b = pair
                hits = self._tracked[pair]
                if not pair_alive(
                    self.task, self.threshold,
                    self._ones[a], self._ones[b], hits,
                ):
                    del self._tracked[pair]
                    self._retire(
                        pair,
                        RetiredPair(hits, self._ones[a], self._ones[b]),
                    )

        # Step 4: emission + churn diff.
        self._rules = self._emit_rules()
        self.applied_seq = seq
        diff = diff_rules(before, self._rules)
        for entry in diff.entries():
            if entry.kind == "added":
                self._journal(
                    "rule-appear", seq=seq, pair=list(entry.pair),
                    rule=entry.after.format(self.vocabulary()),
                    recovered=recovered,
                )
            elif entry.kind == "removed":
                self._journal(
                    "rule-disappear", seq=seq, pair=list(entry.pair),
                    rule=entry.before.format(self.vocabulary()),
                    recovered=recovered,
                )
        self._journal(
            "delta-applied", seq=seq, rows=len(rows),
            appeared=len(diff.added), disappeared=len(diff.removed),
            changed=len(diff.changed), n_rules=len(self._rules),
            readmitted=readmitted, replayed_rows=replayed_rows,
            degraded=degraded, recovered=recovered,
        )
        # Push the batch's churn events past the journal's fsync
        # batching: deltas are low-rate, and `repro watch` followers
        # should see them as they land, not at the next 32-event mark.
        if self.journal is not None:
            self.journal.flush()
        if seq % self.snapshot_every == 0:
            self.snapshot_now()
        self._publish_status()
        return DeltaReceipt(
            seq=seq, status="committed", watermark=self.log.watermark,
            applied_seq=self.applied_seq, rows=len(rows),
            appeared=len(diff.added), disappeared=len(diff.removed),
            changed=len(diff.changed), n_rules=len(self._rules),
            readmitted=readmitted, replayed_rows=replayed_rows,
            degraded=degraded, recovered=recovered,
        )

    def _recount(
        self, pairs: List[Pair], upto: int
    ) -> Tuple[Dict[Pair, int], int]:
        """Exact hits of ``pairs`` over the retained rows 1..``upto``.

        One shared scan recounts every flagged pair; the WAL retains
        all rows precisely so this stays exact forever.
        """
        counts = {pair: 0 for pair in pairs}
        rows_scanned = 0
        for _seq, segment_rows in self.log.iter_rows(upto):
            for row in segment_rows:
                idset = {self._ids[str(label)] for label in row}
                rows_scanned += 1
                for pair in pairs:
                    if pair[0] in idset and pair[1] in idset:
                        counts[pair] += 1
        self.replays_total += 1
        self.replayed_rows_total += rows_scanned
        return counts, rows_scanned

    def _rebuild_from_log(self, upto: int, reason: str) -> None:
        """The journalled full re-mine: recompute the entire state
        from the raw WAL rows in one exact pass."""
        self._labels, self._ids = [], {}
        self._ones, self._n_rows = [], 0
        self._tracked, self._retired = {}, {}
        self._retired_by_col = {}
        hits: Dict[Pair, int] = {}
        for _seq, segment_rows in self.log.iter_rows(upto):
            for row in segment_rows:
                ids = self._row_ids(row)
                self._n_rows += 1
                for column in ids:
                    self._ones[column] += 1
                for x in range(len(ids)):
                    for y in range(x + 1, len(ids)):
                        pair = (ids[x], ids[y])
                        hits[pair] = hits.get(pair, 0) + 1
        for pair, count in hits.items():
            a, b = pair
            if pair_alive(
                self.task, self.threshold,
                self._ones[a], self._ones[b], count,
            ):
                self._tracked[pair] = count
            else:
                self._retire(
                    pair, RetiredPair(count, self._ones[a], self._ones[b])
                )
        self.degrades_total += 1
        self._journal(
            "live-degrade", reason=reason, upto=upto, rows=self._n_rows
        )

    # -- snapshots and recovery ----------------------------------------

    def snapshot_now(self) -> None:
        """Durably snapshot the state at ``applied_seq`` (atomic)."""
        document = {
            "version": SNAPSHOT_VERSION,
            "task": self.task,
            "threshold": str(self.threshold),
            "seq": self.applied_seq,
            "chain_sha": self.log.chain_sha(self.applied_seq),
            "labels": list(self._labels),
            "ones": list(self._ones),
            "n_rows": self._n_rows,
            "tracked": [
                [a, b, hits]
                for (a, b), hits in sorted(self._tracked.items())
            ],
            "retired": [
                [a, b, snap.hits, snap.ones_a, snap.ones_b]
                for (a, b), snap in sorted(self._retired.items())
            ],
            "stats": {
                "readmissions_total": self.readmissions_total,
                "replays_total": self.replays_total,
                "replayed_rows_total": self.replayed_rows_total,
                "degrades_total": self.degrades_total,
            },
        }
        self.snapshots.save(document)

    def _load_snapshot(self, document: Dict[str, object]) -> Optional[str]:
        """Restore state from a snapshot; returns the invariant-breach
        reason when the snapshot cannot be trusted (None = loaded)."""
        if document.get("version") != SNAPSHOT_VERSION:
            return "snapshot-version"
        if document.get("task") != self.task or (
            as_fraction(str(document.get("threshold"))) != self.threshold
        ):
            raise ValueError(
                "snapshot was written by a different configuration "
                f"(task={document.get('task')!r}, "
                f"threshold={document.get('threshold')!r})"
            )
        seq = int(document["seq"])
        if seq > self.log.watermark:
            return "snapshot-ahead-of-wal"
        try:
            if document.get("chain_sha") != self.log.chain_sha(seq):
                return "fingerprint-mismatch"
        except (OSError, ValueError):
            return "fingerprint-unreadable"
        labels = [str(label) for label in document["labels"]]
        ones = [int(count) for count in document["ones"]]
        if len(labels) != len(ones) or len(set(labels)) != len(labels):
            return "column-universe-mismatch"
        self._labels = labels
        self._ids = {label: i for i, label in enumerate(labels)}
        self._ones = ones
        self._n_rows = int(document["n_rows"])
        self._tracked = {
            (int(a), int(b)): int(hits)
            for a, b, hits in document["tracked"]
        }
        self._retired, self._retired_by_col = {}, {}
        for a, b, hits, ones_a, ones_b in document["retired"]:
            self._retire(
                (int(a), int(b)),
                RetiredPair(int(hits), int(ones_a), int(ones_b)),
            )
        stats = document.get("stats", {})
        self.readmissions_total = int(stats.get("readmissions_total", 0))
        self.replays_total = int(stats.get("replays_total", 0))
        self.replayed_rows_total = int(stats.get("replayed_rows_total", 0))
        self.degrades_total = int(stats.get("degrades_total", 0))
        self.applied_seq = seq
        return None

    def recover(self) -> None:
        """The restart path: snapshot + replay, or degrade to the
        journalled full re-mine when an invariant broke.  Deterministic
        — a restarted miner converges to the never-crashed state."""
        document = self.snapshots.load()
        if document is not None:
            breach = self._load_snapshot(document)
            if breach is not None:
                self._rebuild_from_log(
                    upto=self.log.watermark,
                    reason=f"snapshot invariant breach: {breach}",
                )
                self.applied_seq = self.log.watermark
        self._rules = self._emit_rules()
        receipts = self.apply_committed(recovered=True)
        self._journal(
            "live-open", watermark=self.log.watermark,
            applied_seq=self.applied_seq, replayed=len(receipts),
            n_rules=len(self._rules), n_rows=self._n_rows,
        )
        if self.journal is not None:
            self.journal.flush()
        self._publish_status()
