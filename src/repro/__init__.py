"""Dynamic Miss-Counting (DMC) rule mining — an ICDE 2000 reproduction.

Exact mining of high-confidence implication rules and high-similarity
column pairs from a 0/1 matrix *without support pruning*, in two data
scans, by counting the rows where candidate column pairs disagree and
deleting a candidate the moment its miss budget is exhausted.

Quickstart::

    import repro

    result = repro.mine(
        [["bread", "butter"], ["bread", "butter", "jam"], ["jam"]],
        minconf=0.9,
    )
    for rule in result.rules.sorted():
        print(rule.format(result.vocabulary))

:func:`mine` is the facade over every engine (in-memory, partitioned,
streaming, memory-budgeted); the per-engine entry points
(:func:`find_implication_rules` and friends) remain available.

Package layout:

- :mod:`repro.core` — DMC-base / DMC-bitmap / DMC-imp / DMC-sim and
  the partitioned extension (the paper's contribution).
- :mod:`repro.matrix` — the 0/1 matrix substrate, row re-ordering, IO.
- :mod:`repro.baselines` — brute force, a-priori, DHP, Min-Hash, K-Min.
- :mod:`repro.datasets` — synthetic stand-ins for the paper's data.
- :mod:`repro.mining` — rule grouping and verification.
- :mod:`repro.experiments` — one harness function per table/figure.
- :mod:`repro.runtime` — fault tolerance for production runs:
  checkpoint/resume, input validation, memory guards, I/O retry.
- :mod:`repro.observe` — zero-dependency tracing, metrics and progress
  reporting threaded through every pipeline.
"""

from repro.api import (
    ENGINES,
    EnginePlan,
    MiningConfig,
    MiningResult,
    mine,
    resolve_engine,
)
from repro.baselines import (
    apriori_frequent_itemsets,
    apriori_pair_rules,
    apriori_pair_similarity,
    implication_rules_bruteforce,
    kmin_implication_rules,
    minhash_similarity_rules,
    similarity_rules_bruteforce,
)
from repro.core import (
    BitmapConfig,
    ImplicationRule,
    PipelineStats,
    PruningOptions,
    RuleSet,
    SimilarityRule,
    find_implication_rules,
    find_implication_rules_partitioned,
    find_similarity_rules,
    find_similarity_rules_partitioned,
)
from repro.datasets import dataset_names, load_dataset
from repro.matrix import BinaryMatrix, Vocabulary
from repro.mining import expand_keyword, similarity_components
from repro.observe import (
    ConsoleProgress,
    MetricsRegistry,
    NullObserver,
    ProgressObserver,
    RunObserver,
    Tracer,
)
from repro.runtime import (
    CheckpointStore,
    FaultyStorage,
    LocalStorage,
    MemoryBudgetExceeded,
    MemoryGuard,
    RowValidationError,
    RowValidator,
    Storage,
    StorageFull,
    mine_with_memory_budget,
)

__version__ = "1.0.0"

__all__ = [
    "BinaryMatrix",
    "BitmapConfig",
    "CheckpointStore",
    "ConsoleProgress",
    "ENGINES",
    "EnginePlan",
    "FaultyStorage",
    "ImplicationRule",
    "LocalStorage",
    "MemoryBudgetExceeded",
    "MemoryGuard",
    "MetricsRegistry",
    "MiningConfig",
    "MiningResult",
    "NullObserver",
    "PipelineStats",
    "ProgressObserver",
    "PruningOptions",
    "RowValidationError",
    "RowValidator",
    "RuleSet",
    "RunObserver",
    "SimilarityRule",
    "Storage",
    "StorageFull",
    "Tracer",
    "Vocabulary",
    "__version__",
    "apriori_frequent_itemsets",
    "apriori_pair_rules",
    "apriori_pair_similarity",
    "dataset_names",
    "expand_keyword",
    "find_implication_rules",
    "find_implication_rules_partitioned",
    "find_similarity_rules",
    "find_similarity_rules_partitioned",
    "implication_rules_bruteforce",
    "kmin_implication_rules",
    "load_dataset",
    "mine",
    "mine_with_memory_budget",
    "minhash_similarity_rules",
    "resolve_engine",
    "similarity_components",
    "similarity_rules_bruteforce",
]
