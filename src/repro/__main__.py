"""Module entry point for ``python -m repro``.

The ``__name__`` guard is load-bearing: spawn-context workers
(``--workers``) re-import the main module as ``__mp_main__``, and
without it every worker would re-run the CLI instead of serving tasks.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
