"""Extended property-based tests: streaming, top-k, export, query.

Complements tests/test_properties.py (the core exactness properties)
with invariants of the surrounding machinery.
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import implication_rules_bruteforce
from repro.core.topk import top_k_implication_rules
from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.stream import IterableSource, stream_implication_rules
from repro.mining.export import (
    rules_from_json,
    rules_to_json,
)
from repro.mining.query import RuleQuery

matrices = st.builds(
    lambda rows, m: BinaryMatrix(
        [[c for c in row if c < m] for row in rows], n_columns=m
    ),
    rows=st.lists(
        st.lists(st.integers(min_value=0, max_value=9), max_size=6),
        max_size=18,
    ),
    m=st.integers(min_value=1, max_value=10),
)

thresholds = st.fractions(
    min_value=Fraction(1, 8), max_value=Fraction(1), max_denominator=8
)

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(matrix=matrices, threshold=thresholds)
def test_streaming_equals_oracle(matrix, threshold):
    """The two-pass streaming pipeline is exact for any input."""
    source = IterableSource(
        [row for _, row in matrix.iter_rows()],
        columns=matrix.n_columns,
    )
    got = stream_implication_rules(source, threshold).pairs()
    want = implication_rules_bruteforce(matrix, threshold).pairs()
    assert got == want


@relaxed
@given(matrix=matrices, k=st.integers(min_value=1, max_value=8))
def test_topk_returns_the_k_strongest(matrix, k):
    """Top-k output == the k strongest oracle rules (ties included)."""
    rules, cut = top_k_implication_rules(
        matrix, k, floor_threshold=Fraction(1, 100)
    )
    truth = implication_rules_bruteforce(matrix, Fraction(1, 100))
    if len(truth) == 0:
        assert cut is None and len(rules) == 0
        return
    strengths = sorted(
        (rule.confidence for rule in truth), reverse=True
    )
    expected_cut = strengths[min(k, len(strengths)) - 1]
    assert cut == expected_cut
    assert rules.pairs() == {
        rule.pair for rule in truth if rule.confidence >= expected_cut
    }


@relaxed
@given(matrix=matrices, threshold=thresholds)
def test_json_round_trip_is_lossless(matrix, threshold):
    rules = implication_rules_bruteforce(matrix, threshold)
    assert rules_from_json(rules_to_json(rules)) == rules


@relaxed
@given(matrix=matrices, threshold=thresholds, cut=thresholds)
def test_query_at_least_equals_remining(matrix, threshold, cut):
    """Filtering mined rules at a higher threshold equals mining at
    that threshold directly."""
    if cut < threshold:
        threshold, cut = cut, threshold
    mined = implication_rules_bruteforce(matrix, threshold)
    filtered = RuleQuery(mined).at_least(cut).to_rule_set()
    direct = implication_rules_bruteforce(matrix, cut)
    assert filtered.pairs() == direct.pairs()


@relaxed
@given(matrix=matrices, threshold=thresholds)
def test_query_partitions_by_threshold(matrix, threshold):
    """at_least(t) and below(t) partition the rule set."""
    mined = implication_rules_bruteforce(matrix, Fraction(1, 8))
    upper = RuleQuery(mined).at_least(threshold).count()
    lower = RuleQuery(mined).below(threshold).count()
    assert upper + lower == len(mined)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_quest_generator_mines_exactly(seed):
    """DMC stays exact on Quest-style correlated workloads."""
    from repro.core.dmc_imp import find_implication_rules
    from repro.datasets.quest import generate_quest

    matrix = generate_quest(
        n_transactions=60, n_items=25, n_patterns=5, seed=seed
    )
    got = find_implication_rules(matrix, Fraction(3, 4)).pairs()
    want = implication_rules_bruteforce(matrix, Fraction(3, 4)).pairs()
    assert got == want
