"""The vectorized second-pass engine (repro.core.vector) and the
engine= resolver (repro.api.resolve_engine).

Rule-set parity with the serial scan gates everything the vector
engine does, so the heart of this module is a seeded randomized
harness: random matrices x every policy family x awkward block sizes,
asserting byte-identical rule sets against the row-at-a-time engine.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

import repro
from repro.api import ENGINES, MiningConfig, mine, resolve_engine
from repro.core.dmc_imp import PruningOptions, find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.miss_counting import BitmapConfig, miss_counting_scan
from repro.core.policies import (
    HundredPercentPolicy,
    IdentityPolicy,
    ImplicationPolicy,
    SimilarityPolicy,
)
from repro.core.stats import ScanStats
from repro.core.vector import (
    DEFAULT_BLOCK_ROWS,
    vector_scan,
    vector_scan_rows,
)
from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.reorder import scan_order
from repro.matrix.stream import MatrixSource
from repro.observe.journal import summarize_journal
from repro.observe.live import LiveRunStatus
from tests.conftest import random_binary_matrix

BLOCK_SIZES = (1, 7, 64)


def _policies(matrix):
    """One policy per family, with exact-Fraction thresholds that land
    on confidence/similarity boundary values for small matrices."""
    ones = matrix.column_ones()
    return [
        ImplicationPolicy(ones, Fraction(1, 2)),
        ImplicationPolicy(ones, Fraction(3, 4)),
        SimilarityPolicy(ones, Fraction(1, 3)),
        SimilarityPolicy(ones, Fraction(2, 3)),
        HundredPercentPolicy(ones),
        IdentityPolicy(ones),
    ]


class TestScanParity:
    """vector_scan must reproduce miss_counting_scan bit for bit."""

    def test_randomized_matrix_policy_block_sweep(self):
        for seed in range(8):
            matrix = random_binary_matrix(seed)
            for policy_index, policy in enumerate(_policies(matrix)):
                want = miss_counting_scan(matrix, policy).pairs()
                for block_rows in BLOCK_SIZES:
                    got = vector_scan(
                        matrix, policy, block_rows=block_rows
                    ).pairs()
                    assert got == want, (seed, policy_index, block_rows)

    def test_sparsest_first_order(self):
        for seed in range(4):
            matrix = random_binary_matrix(seed)
            order = scan_order(matrix)
            policy = ImplicationPolicy(
                matrix.column_ones(), Fraction(2, 3)
            )
            want = miss_counting_scan(matrix, policy, order=order).pairs()
            got = vector_scan(
                matrix, policy, order=order, block_rows=7
            ).pairs()
            assert got == want, seed

    def test_fraction_threshold_boundary(self):
        """A pair sitting exactly on the threshold must be kept by both
        engines (confidence >= minconf, with exact arithmetic)."""
        # c0 appears 4x, c0&c1 3x: conf(c0 -> c1) is exactly 3/4.
        rows = [[0, 1], [0, 1], [0, 1], [0], [1]]
        matrix = BinaryMatrix(rows, n_columns=2)
        for minconf in (Fraction(3, 4), Fraction(3, 4) + Fraction(1, 1000)):
            policy = ImplicationPolicy(matrix.column_ones(), minconf)
            want = miss_counting_scan(matrix, policy).pairs()
            got = vector_scan(matrix, policy, block_rows=2).pairs()
            assert got == want, minconf
        # Exactly at the boundary the rule exists; a hair above, not.
        at = ImplicationPolicy(matrix.column_ones(), Fraction(3, 4))
        assert vector_scan(matrix, at).pairs() == {(0, 1)}

    def test_popcount_kernel_path(self):
        """dense_pair_columns=0 forces the packed-bitmap fallback on
        every block; the rules must not change."""
        for seed in range(4):
            matrix = random_binary_matrix(seed)
            policy = SimilarityPolicy(
                matrix.column_ones(), Fraction(1, 2)
            )
            want = miss_counting_scan(matrix, policy).pairs()
            rows = list(matrix.iter_rows())
            got = vector_scan_rows(
                iter(rows),
                len(rows),
                policy,
                block_rows=7,
                dense_pair_columns=0,
            ).pairs()
            assert got == want, seed

    def test_bitmap_handover(self):
        """The Section 4.4 switch hands live pairs to the bitmap tail
        mid-scan; parity must survive the handover."""
        for seed in range(4):
            matrix = random_binary_matrix(seed)
            policy = ImplicationPolicy(
                matrix.column_ones(), Fraction(1, 2)
            )
            bitmap = BitmapConfig(switch_rows=1000, memory_budget_bytes=0)
            want = miss_counting_scan(
                matrix, policy, bitmap=bitmap
            ).pairs()
            got = vector_scan(
                matrix, policy, bitmap=bitmap, block_rows=7
            ).pairs()
            assert got == want, seed

    def test_stats_accounting_balanced(self):
        matrix = random_binary_matrix(3)
        stats = ScanStats()
        vector_scan(
            matrix,
            ImplicationPolicy(matrix.column_ones(), Fraction(1, 2)),
            stats=stats,
            block_rows=7,
        )
        assert stats.accounting_balanced()
        assert stats.rows_scanned > 0
        assert stats.pruning_curve  # sampled at block boundaries

    def test_rejects_unknown_scan_engine(self):
        with pytest.raises(ValueError, match="scan_engine"):
            PruningOptions(scan_engine="simd")


class TestPipelineParity:
    """The full two-pass pipelines under scan_engine='vector'."""

    def test_implication_with_ablations(self):
        for seed in range(4):
            matrix = random_binary_matrix(seed)
            for options in (
                PruningOptions(),
                PruningOptions(density_pruning=False),
                PruningOptions(max_hits_pruning=False),
                PruningOptions(hundred_percent_pass=False),
            ):
                vector_options = replace(
                    options, scan_engine="vector", vector_block_rows=7
                )
                want = find_implication_rules(
                    matrix, Fraction(3, 5), options=options
                ).pairs()
                got = find_implication_rules(
                    matrix, Fraction(3, 5), options=vector_options
                ).pairs()
                assert got == want, seed

    def test_similarity(self):
        for seed in range(4):
            matrix = random_binary_matrix(seed)
            want = find_similarity_rules(matrix, Fraction(2, 5)).pairs()
            got = find_similarity_rules(
                matrix,
                Fraction(2, 5),
                options=PruningOptions(
                    scan_engine="vector", vector_block_rows=7
                ),
            ).pairs()
            assert got == want, seed


class TestResolver:
    """resolve_engine: one unit test per engine value and conflict."""

    @staticmethod
    def _resolve(streaming=False, **kwargs):
        kwargs.setdefault("threshold", 0.9)
        return resolve_engine(MiningConfig(**kwargs), streaming=streaming)

    def test_engine_names_are_documented(self):
        assert ENGINES == ("auto", "dmc", "stream", "partitioned", "vector")

    def test_auto_in_memory_is_dmc(self):
        plan, options = self._resolve()
        assert (plan.name, plan.carrier, plan.scan_engine) == (
            "dmc", "dmc", "serial",
        )
        assert options.scan_engine == "serial"

    def test_auto_streaming_streams(self):
        plan, _ = self._resolve(streaming=True)
        assert (plan.name, plan.carrier) == ("stream", "stream")

    def test_auto_memory_budget_is_guarded(self):
        plan, _ = self._resolve(memory_budget=1024)
        assert (plan.name, plan.carrier) == ("dmc", "guarded")

    def test_auto_partitioned_flag_warns(self):
        with pytest.warns(DeprecationWarning, match="engine='partitioned'"):
            plan, _ = self._resolve(partitioned=True)
        assert plan.carrier == "partitioned"

    def test_explicit_dmc(self):
        plan, _ = self._resolve(engine="dmc")
        assert (plan.name, plan.carrier, plan.scan_engine) == (
            "dmc", "dmc", "serial",
        )

    def test_explicit_stream_wraps_matrix(self):
        plan, _ = self._resolve(engine="stream")
        assert (plan.name, plan.carrier) == ("stream", "stream")

    def test_stream_plus_vector_scan(self):
        plan, options = self._resolve(
            engine="stream",
            options=PruningOptions(scan_engine="vector"),
        )
        assert plan.name == "stream+vector"
        assert options.vector_block_rows == DEFAULT_BLOCK_ROWS

    def test_explicit_partitioned(self):
        plan, _ = self._resolve(engine="partitioned")
        assert (plan.name, plan.carrier) == ("partitioned", "partitioned")

    def test_partitioned_plus_vector_scan(self):
        plan, _ = self._resolve(
            engine="partitioned",
            options=PruningOptions(scan_engine="vector"),
        )
        assert plan.name == "partitioned+vector"

    def test_vector_defaults_block_rows(self):
        plan, options = self._resolve(engine="vector")
        assert (plan.name, plan.carrier, plan.scan_engine) == (
            "vector", "dmc", "vector",
        )
        assert options.scan_engine == "vector"
        assert options.vector_block_rows == DEFAULT_BLOCK_ROWS

    def test_vector_block_rows_override(self):
        _, options = self._resolve(engine="vector", vector_block_rows=256)
        assert options.vector_block_rows == 256

    def test_vector_with_workers_partitions(self):
        plan, _ = self._resolve(engine="vector", n_workers=2)
        assert (plan.name, plan.carrier) == (
            "partitioned+vector", "partitioned",
        )

    def test_vector_with_partitioned_flag_partitions(self):
        plan, _ = self._resolve(engine="vector", partitioned=True)
        assert plan.name == "partitioned+vector"

    def test_dmc_rejects_vector_scan_option(self):
        with pytest.raises(ValueError, match="engine='vector'"):
            self._resolve(
                engine="dmc",
                options=PruningOptions(scan_engine="vector"),
            )

    def test_streaming_rejects_in_memory_engines(self):
        for engine in ("dmc", "partitioned"):
            with pytest.raises(ValueError, match="in-memory"):
                self._resolve(engine=engine, streaming=True)

    def test_streaming_vector_error_has_hint(self):
        with pytest.raises(ValueError, match="engine='stream'"):
            self._resolve(engine="vector", streaming=True)

    def test_streaming_rejects_partition_requests(self):
        with pytest.raises(ValueError, match="in-memory"):
            self._resolve(streaming=True, transport="thread")

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            MiningConfig(threshold=0.9, engine="gpu")

    def test_config_rejects_bad_block_rows(self):
        with pytest.raises(ValueError, match="vector_block_rows"):
            MiningConfig(threshold=0.9, vector_block_rows=0)

    def test_config_conflicts(self):
        for kwargs in (
            {"engine": "dmc", "partitioned": True},
            {"engine": "dmc", "transport": "thread"},
            {"engine": "dmc", "memory_budget": 1024},
            {"engine": "vector", "memory_budget": 1024},
            {"engine": "stream", "partitioned": True},
            {"engine": "stream", "memory_budget": 1024},
        ):
            with pytest.raises(ValueError):
                MiningConfig(threshold=0.9, **kwargs)


class TestMineVector:
    """engine='vector' end to end through the facade."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return random_binary_matrix(5, max_rows=60, max_columns=20)

    def test_matches_serial_implication(self, matrix):
        serial = mine(matrix, minconf=0.7, engine="dmc")
        vector = mine(matrix, minconf=0.7, engine="vector")
        assert vector.engine == "vector"
        assert vector.rules.pairs() == serial.rules.pairs()

    def test_matches_serial_similarity(self, matrix):
        serial = mine(matrix, minsim=0.4, engine="dmc")
        vector = mine(matrix, minsim=0.4, engine="vector")
        assert vector.rules.pairs() == serial.rules.pairs()

    def test_stats_record_engine_and_block_size(self, matrix):
        result = mine(
            matrix, minconf=0.7, engine="vector", vector_block_rows=64
        )
        assert result.stats.engine == "vector"
        assert result.stats.vector_block_rows == 64
        round_trip = repro.PipelineStats.from_dict(result.stats.to_dict())
        assert round_trip.engine == "vector"
        assert round_trip.vector_block_rows == 64

    def test_serial_stats_have_no_block_size(self, matrix):
        result = mine(matrix, minconf=0.7)
        assert result.stats.engine == "dmc"
        assert result.stats.vector_block_rows is None

    def test_partitioned_vector_carrier(self, matrix):
        serial = mine(matrix, minconf=0.7, engine="dmc")
        result = mine(
            matrix,
            minconf=0.7,
            engine="vector",
            partitioned=True,
            n_partitions=3,
        )
        assert result.engine == "partitioned+vector"
        assert result.rules.pairs() == serial.rules.pairs()

    def test_stream_vector_carrier(self, matrix):
        serial = mine(matrix, minconf=0.7, engine="dmc")
        result = mine(
            matrix,
            minconf=0.7,
            engine="stream",
            options=PruningOptions(scan_engine="vector"),
        )
        assert result.engine == "stream+vector"
        assert result.rules.pairs() == serial.rules.pairs()

    def test_streaming_source_rejects_vector(self, matrix):
        with pytest.raises(ValueError, match="engine='stream'"):
            mine(MatrixSource(matrix), minconf=0.7, engine="vector")

    def test_journal_records_engine(self, matrix, tmp_path):
        path = str(tmp_path / "run.jsonl")
        mine(
            matrix,
            minconf=0.7,
            engine="vector",
            vector_block_rows=64,
            journal_path=path,
        )
        summary = summarize_journal(path)
        assert summary["engine"] == "vector"
        assert summary["vector_block_rows"] == 64

    def test_live_status_reports_engine(self, matrix):
        status = LiveRunStatus("run-vec")
        observer = repro.RunObserver(status=status)
        mine(matrix, minconf=0.7, engine="vector", observer=observer)
        assert status.snapshot()["engine"] == "vector"
