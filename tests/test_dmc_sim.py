"""The DMC-sim pipeline (repro.core.dmc_sim, Algorithm 5.1)."""

from fractions import Fraction

from repro.baselines.bruteforce import similarity_rules_bruteforce
from repro.core.dmc_imp import PruningOptions
from repro.core.dmc_sim import find_similarity_rules
from repro.core.miss_counting import BitmapConfig
from repro.core.stats import PipelineStats
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


class TestPipelineCorrectness:
    def test_matches_oracle_across_thresholds(self):
        for seed in range(15):
            matrix = random_binary_matrix(seed)
            for threshold in (1.0, 0.8, 0.5, 0.34):
                got = find_similarity_rules(matrix, threshold).pairs()
                want = similarity_rules_bruteforce(
                    matrix, threshold
                ).pairs()
                assert got == want, (seed, threshold)

    def test_all_option_combinations_agree(self):
        matrix = random_binary_matrix(43)
        baseline = find_similarity_rules(matrix, 0.5).pairs()
        for density in (True, False):
            for max_hits in (True, False):
                for hundred in (True, False):
                    options = PruningOptions(
                        density_pruning=density,
                        max_hits_pruning=max_hits,
                        hundred_percent_pass=hundred,
                        bitmap=BitmapConfig(
                            switch_rows=7, memory_budget_bytes=0
                        ),
                    )
                    got = find_similarity_rules(
                        matrix, 0.5, options=options
                    ).pairs()
                    assert got == baseline, options

    def test_statistics_are_exact(self):
        matrix = random_binary_matrix(3)
        rules = find_similarity_rules(matrix, 0.4)
        sets = matrix.column_sets()
        for rule in rules:
            assert rule.intersection == len(
                sets[rule.first] & sets[rule.second]
            )
            assert rule.union == len(sets[rule.first] | sets[rule.second])

    def test_similarities_meet_threshold(self):
        matrix = random_binary_matrix(4)
        rules = find_similarity_rules(matrix, 0.6)
        assert all(
            rule.similarity >= Fraction(3, 5) for rule in rules
        )

    def test_monotone_in_threshold(self):
        matrix = random_binary_matrix(11)
        low = find_similarity_rules(matrix, 0.4).pairs()
        high = find_similarity_rules(matrix, 0.8).pairs()
        assert high <= low

    def test_pairs_are_canonical(self):
        matrix = random_binary_matrix(12)
        ones = matrix.column_ones()
        for rule in find_similarity_rules(matrix, 0.4):
            assert (ones[rule.first], rule.first) < (
                ones[rule.second],
                rule.second,
            )


class TestIdenticalColumns:
    def test_minsim_one_finds_exact_duplicates(self):
        matrix = BinaryMatrix(
            [[0, 1, 2], [0, 1], [0, 1, 3], [3]], n_columns=4
        )
        rules = find_similarity_rules(matrix, 1)
        assert rules.pairs() == {(0, 1)}
        assert rules[(0, 1)].similarity == 1

    def test_minsim_one_skips_partial_pass(self):
        matrix = random_binary_matrix(2)
        stats = PipelineStats()
        find_similarity_rules(matrix, 1, stats=stats)
        assert "<100%-rules" not in stats.breakdown()

    def test_identical_pass_feeds_final_result(self):
        # Duplicated sparse columns must survive even though the <100%
        # pass removes them (their ones fall below the cutoff).
        rows = [[0, 1]] * 2 + [[2, 3]] * 30 + [[2]] * 5
        matrix = BinaryMatrix(rows, n_columns=4)
        rules = find_similarity_rules(matrix, 0.9)
        assert (0, 1) in rules.pairs()


class TestBoundaryCutoffs:
    def test_boundary_similarity_at_cutoff_is_kept(self):
        """At minsim = 3/4, a pair with ones 3 and 4 sharing all three
        rows has similarity exactly 3/4; the paper's removal cutoff
        would drop the sparse column, the exact cutoff keeps it."""
        rows = [[0, 1]] * 3 + [[1]] + [[2]] * 10
        matrix = BinaryMatrix(rows, n_columns=3)
        rules = find_similarity_rules(matrix, 0.75)
        assert (0, 1) in rules.pairs()
        assert rules[(0, 1)].similarity == Fraction(3, 4)

    def test_stats_column_removal(self):
        rows = [[0]] + [[1, 2]] * 20
        matrix = BinaryMatrix(rows, n_columns=3)
        stats = PipelineStats()
        find_similarity_rules(matrix, 0.75, stats=stats)
        assert stats.columns_removed >= 1  # column 0: one 1 only
