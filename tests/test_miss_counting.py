"""The DMC-base scan engine (repro.core.miss_counting, Algorithm 3.1).

Includes the paper's worked examples as ground-truth anchors:
Example 1.2 (Figure 1), Example 1.3, and Example 3.1 (Figure 2) with
its candidate-count histories under both scan orders.
"""

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.miss_counting import (
    BitmapConfig,
    miss_counting_scan,
    zero_miss_scan,
)
from repro.core.policies import (
    HundredPercentPolicy,
    IdentityPolicy,
    ImplicationPolicy,
    SimilarityPolicy,
)
from repro.core.stats import ScanStats
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import (
    EXAMPLE12_100_RULES,
    EXAMPLE31_RULES,
    EXAMPLE31_SPARSEST_ORDER,
    random_binary_matrix,
)


class TestPaperExample12:
    """Figure 1: only c3 => c2 survives at 100% confidence."""

    def test_hundred_percent_rules(self, example12):
        policy = HundredPercentPolicy(example12.column_ones())
        rules = miss_counting_scan(example12, policy)
        assert rules.pairs() == EXAMPLE12_100_RULES

    def test_zero_miss_fast_path_agrees(self, example12):
        policy = HundredPercentPolicy(example12.column_ones())
        rules = zero_miss_scan(example12, policy)
        assert rules.pairs() == EXAMPLE12_100_RULES

    def test_candidates_killed_at_r3(self, example12):
        """r3 = {c1} kills c1 => c2 and c1 => c3 immediately."""
        policy = HundredPercentPolicy(example12.column_ones())
        stats = ScanStats()
        miss_counting_scan(example12, policy, stats=stats)
        assert stats.candidates_deleted >= 2


class TestPaperExample31:
    """Figure 2: 80% confidence, six columns of five 1's each."""

    def test_final_rules(self, example31):
        policy = ImplicationPolicy(example31.column_ones(), 0.8)
        rules = miss_counting_scan(example31, policy)
        assert rules.pairs() == EXAMPLE31_RULES

    def test_one_miss_allowed_per_column(self, example31):
        policy = ImplicationPolicy(example31.column_ones(), 0.8)
        assert all(budget == 1 for budget in policy.maxmiss)

    def test_candidate_history_original_order(self, example31):
        """The paper reports (1,4,4,7,9,7,7,6,2); the reconstruction
        matches the first five counts exactly (the narrative through
        r4+r5) and ends at 0 because this implementation frees a list
        when its rules are emitted."""
        policy = ImplicationPolicy(example31.column_ones(), 0.8)
        stats = ScanStats()
        miss_counting_scan(
            example31, policy, order=list(range(9)), stats=stats
        )
        assert stats.candidate_history[:5] == [1, 4, 4, 7, 9]
        assert stats.candidate_history[-1] == 0

    def test_candidate_history_sparsest_order(self, example31):
        """The paper reports (1,2,3,5,6,8,5,2,2) for the order
        (r1,r3,r8,r2,r5,r4,r6,r9,r7); all but the final release-time
        entry match."""
        policy = ImplicationPolicy(example31.column_ones(), 0.8)
        stats = ScanStats()
        rules = miss_counting_scan(
            example31,
            policy,
            order=list(EXAMPLE31_SPARSEST_ORDER),
            stats=stats,
        )
        assert stats.candidate_history[:8] == [1, 2, 3, 5, 6, 8, 5, 2]
        assert rules.pairs() == EXAMPLE31_RULES

    def test_reordering_reduces_peak_candidates(self, example31):
        policy = ImplicationPolicy(example31.column_ones(), 0.8)
        original = ScanStats()
        miss_counting_scan(
            example31, policy, order=list(range(9)), stats=original
        )
        reordered = ScanStats()
        miss_counting_scan(
            example31,
            policy,
            order=list(EXAMPLE31_SPARSEST_ORDER),
            stats=reordered,
        )
        assert reordered.peak_entries < original.peak_entries

    def test_against_oracle(self, example31):
        truth = implication_rules_bruteforce(example31, 0.8)
        assert truth.pairs() == EXAMPLE31_RULES


class TestPaperExample13:
    """Example 1.3: 100 ones at 85% => 15 misses; no new candidates
    after 16 antecedent rows."""

    def test_add_cutoff(self):
        policy = ImplicationPolicy([100, 200], 0.85)
        assert policy.add_cutoff(0) == 15  # 16th row => cnt 16 > 15


class TestEngineAgainstOracle:
    def test_implication_random(self):
        for seed in range(25):
            matrix = random_binary_matrix(seed)
            for threshold in (1.0, 0.8, 0.5):
                policy = ImplicationPolicy(matrix.column_ones(), threshold)
                got = miss_counting_scan(matrix, policy).pairs()
                want = implication_rules_bruteforce(
                    matrix, threshold
                ).pairs()
                assert got == want, (seed, threshold)

    def test_similarity_random(self):
        for seed in range(25):
            matrix = random_binary_matrix(seed)
            for threshold in (1.0, 0.75, 0.4):
                policy = SimilarityPolicy(matrix.column_ones(), threshold)
                got = miss_counting_scan(matrix, policy).pairs()
                want = similarity_rules_bruteforce(
                    matrix, threshold
                ).pairs()
                assert got == want, (seed, threshold)

    def test_row_order_invariance(self):
        matrix = random_binary_matrix(77)
        policy = ImplicationPolicy(matrix.column_ones(), 0.7)
        baseline = miss_counting_scan(matrix, policy).pairs()
        reversed_order = [
            r for r, row in matrix.iter_rows() if row
        ][::-1]
        assert (
            miss_counting_scan(
                matrix, policy, order=reversed_order
            ).pairs()
            == baseline
        )

    def test_zero_miss_scan_equals_generic_engine(self):
        for seed in range(15):
            matrix = random_binary_matrix(seed)
            policy = HundredPercentPolicy(matrix.column_ones())
            assert (
                zero_miss_scan(matrix, policy).pairs()
                == miss_counting_scan(matrix, policy).pairs()
            )

    def test_zero_miss_scan_identity_policy(self):
        for seed in range(15):
            matrix = random_binary_matrix(seed)
            policy = IdentityPolicy(matrix.column_ones())
            want = similarity_rules_bruteforce(matrix, 1).pairs()
            assert zero_miss_scan(matrix, policy).pairs() == want


class TestEdgeCases:
    def test_empty_matrix(self):
        matrix = BinaryMatrix([], n_columns=0)
        policy = ImplicationPolicy([], 0.5)
        assert len(miss_counting_scan(matrix, policy)) == 0

    def test_all_zero_columns(self):
        matrix = BinaryMatrix([[], []], n_columns=3)
        policy = ImplicationPolicy(matrix.column_ones(), 0.5)
        assert len(miss_counting_scan(matrix, policy)) == 0

    def test_single_row(self):
        matrix = BinaryMatrix([[0, 1, 2]], n_columns=3)
        policy = ImplicationPolicy(matrix.column_ones(), 1)
        rules = miss_counting_scan(matrix, policy)
        # All pairs are 100% rules; canonical tie-break is by id.
        assert rules.pairs() == {(0, 1), (0, 2), (1, 2)}

    def test_identical_columns_full_confidence_both_ways(self):
        matrix = BinaryMatrix([[0, 1], [0, 1]], n_columns=2)
        policy = ImplicationPolicy(matrix.column_ones(), 1)
        # Only the canonical direction (0 => 1) is mined.
        assert miss_counting_scan(matrix, policy).pairs() == {(0, 1)}

    def test_rules_emitted_as_columns_complete(self):
        matrix = BinaryMatrix([[0, 1], [1]], n_columns=2)
        policy = ImplicationPolicy(matrix.column_ones(), 1)
        stats = ScanStats()
        rules = miss_counting_scan(matrix, policy, stats=stats)
        assert rules.pairs() == {(0, 1)}
        assert stats.rules_emitted == 1

    def test_stats_histories_have_row_per_nonempty_row(self):
        matrix = BinaryMatrix([[0], [], [1]], n_columns=2)
        policy = ImplicationPolicy(matrix.column_ones(), 1)
        stats = ScanStats()
        miss_counting_scan(matrix, policy, stats=stats)
        assert stats.rows_scanned == 2
        assert len(stats.candidate_history) == 2
        assert len(stats.memory_history) == 2


class TestBitmapSwitchInsideScan:
    def test_forced_switch_preserves_results(self):
        for seed in range(15):
            matrix = random_binary_matrix(seed)
            policy = ImplicationPolicy(matrix.column_ones(), 0.6)
            baseline = miss_counting_scan(matrix, policy).pairs()
            forced = BitmapConfig(
                switch_rows=10**9, memory_budget_bytes=0
            )
            stats = ScanStats()
            switched = miss_counting_scan(
                matrix, policy, bitmap=forced, stats=stats
            ).pairs()
            assert switched == baseline, seed

    def test_switch_records_position(self):
        matrix = random_binary_matrix(3)
        policy = ImplicationPolicy(matrix.column_ones(), 0.6)
        stats = ScanStats()
        miss_counting_scan(
            matrix,
            policy,
            bitmap=BitmapConfig(switch_rows=10**9, memory_budget_bytes=0),
            stats=stats,
        )
        # The empty counter array (0 bytes) cannot exceed the budget, so
        # the switch fires right after the first row creates a list.
        assert stats.bitmap_switch_at == 1

    def test_never_switches_under_large_budget(self):
        matrix = random_binary_matrix(3)
        policy = ImplicationPolicy(matrix.column_ones(), 0.6)
        stats = ScanStats()
        miss_counting_scan(
            matrix, policy, bitmap=BitmapConfig(), stats=stats
        )
        assert stats.bitmap_switch_at is None


class TestEngineMisuse:
    def test_mismatched_policy_rejected(self):
        import pytest

        matrix = BinaryMatrix([[0, 1]], n_columns=2)
        policy = ImplicationPolicy([1, 1, 1], 0.5)  # 3 columns
        with pytest.raises(ValueError):
            miss_counting_scan(matrix, policy)
        with pytest.raises(ValueError):
            zero_miss_scan(matrix, HundredPercentPolicy([1, 1, 1]))

    def test_streaming_core_direct_use(self):
        from repro.core.miss_counting import miss_counting_scan_rows

        rows = [(0, (0, 1)), (1, (0, 1)), (2, (1,))]
        policy = ImplicationPolicy([2, 3], 1)
        rules = miss_counting_scan_rows(iter(rows), 3, policy)
        assert rules.pairs() == {(0, 1)}

    def test_streaming_core_short_stream_tolerated(self):
        from repro.core.miss_counting import miss_counting_scan_rows

        rows = [(0, (0, 1))]
        policy = ImplicationPolicy([1, 1], 1)
        # n_rows over-declared: the engine stops at stream end.
        rules = miss_counting_scan_rows(iter(rows), 5, policy)
        assert rules.pairs() == {(0, 1)}
