"""End-to-end tracing, request analytics, and profiler tests.

The exactness bar for traces mirrors the repo's mining bar: a span
tree recovered from the per-run archive must equal the in-memory
tracer's tree — including under worker retries, where failed attempts
appear *tagged* but never merge their metrics.  The Chrome-trace
exporter is checked against the Catapult JSON object format that
``chrome://tracing`` and Perfetto load directly.
"""

import json
import os
import re
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.cli import main as cli_main
from repro.core.dmc_imp import find_implication_rules
from repro.core.partitioned import find_implication_rules_partitioned
from repro.core.stats import PipelineStats
from repro.live.miner import LiveMiner
from repro.matrix.binary_matrix import BinaryMatrix
from repro.observe import (
    MetricsRegistry,
    RunJournal,
    RunObserver,
    SamplingProfiler,
    read_journal,
    route_label,
    summarize_journal,
    trace_to_chrome,
    write_chrome_trace,
)
from repro.observe.profiler import fold_stack
from repro.observe.server import MetricsServer
from repro.observe.tracer import Span, Tracer
from repro.runtime.faults import WorkerFault, WorkerFaultPlan
from repro.runtime.supervisor import SupervisorError
from repro.service import JobSpec, MiningService, Scheduler
from repro.service.jobs import DONE, JobIndex

TRANSACTIONS = [
    ["a", "b"], ["a", "b"], ["a", "b"], ["a"], ["b", "c"], ["b", "c"],
]


def _matrix(seed: int = 7, rows: int = 80, cols: int = 16) -> BinaryMatrix:
    generator = np.random.default_rng(seed)
    dense = (generator.random((rows, cols)) < 0.3).astype(np.uint8)
    return BinaryMatrix.from_dense(dense)


def sample_tracer() -> Tracer:
    """A small forest with nesting, attributes, and a worker subtree."""
    tracer = Tracer(trace_id="req-0123abcd")
    with tracer.span("attempt", job_id="j1", attempt=1):
        with tracer.span("scan", rows=64):
            tracer.annotate(live_candidates=12)
        worker = Span(
            name="task",
            start_seconds=0.01,
            seconds=0.5,
            attributes={"worker_id": "3", "task_id": "part-0001"},
            children=[Span(name="scan", start_seconds=0.02, seconds=0.4)],
        )
        tracer.attach(worker)
    return tracer


def walk(spans):
    for span in spans:
        yield span
        for child in walk(span.children):
            yield child


def walk_dicts(spans):
    for span in spans:
        yield span
        for child in walk_dicts(span.get("children") or []):
            yield child


# ----------------------------------------------------------------------
# Tracer archive round trip
# ----------------------------------------------------------------------


class TestTracerRoundTrip:
    def test_from_dict_is_exact(self):
        document = sample_tracer().to_dict()
        assert Tracer.from_dict(document).to_dict() == document

    def test_trace_id_survives_the_round_trip(self):
        document = sample_tracer().to_dict()
        assert document["trace_id"] == "req-0123abcd"
        assert Tracer.from_dict(document).trace_id == "req-0123abcd"

    def test_without_trace_id_key_is_omitted(self):
        tracer = Tracer()
        with tracer.span("scan"):
            pass
        document = tracer.to_dict()
        assert "trace_id" not in document
        assert Tracer.from_dict(document).to_dict() == document

    def test_archive_accumulation_appends_attempts(self):
        """Seeding a tracer from an archive appends, never rewrites."""
        first = Tracer(trace_id="req-1")
        with first.span("attempt", attempt=1):
            pass
        resumed = Tracer.from_dict(first.to_dict())
        with resumed.span("attempt", attempt=2):
            pass
        names = [(s.name, s.attributes["attempt"]) for s in resumed.spans]
        assert names == [("attempt", 1), ("attempt", 2)]


# ----------------------------------------------------------------------
# Chrome-trace (Catapult) exporter conformance
# ----------------------------------------------------------------------


class TestChromeExport:
    def test_object_format_and_event_schema(self):
        chrome = trace_to_chrome(sample_tracer().to_dict())
        assert set(chrome) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert chrome["displayTimeUnit"] == "ms"
        assert isinstance(chrome["traceEvents"], list)
        json.dumps(chrome)  # must be plain-JSON serializable
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 4  # attempt, scan, task, worker scan
        for event in complete:
            assert set(event) >= {
                "name", "cat", "ph", "ts", "dur", "pid", "tid", "args",
            }
            assert event["pid"] == 1
            assert event["ts"] >= 0 and event["dur"] >= 0
            # microseconds: the 0.5s worker task must read as 500000us
            assert isinstance(event["args"], dict)

    def test_metadata_names_process_and_every_track(self):
        chrome = trace_to_chrome(sample_tracer().to_dict(), "svc")
        metadata = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        process = [e for e in metadata if e["name"] == "process_name"]
        assert [e["args"]["name"] for e in process] == ["svc"]
        named_tids = {
            e["tid"] for e in metadata if e["name"] == "thread_name"
        }
        used_tids = {
            e["tid"] for e in chrome["traceEvents"] if e["ph"] == "X"
        }
        assert used_tids <= named_tids

    def test_trace_id_rides_every_event_and_other_data(self):
        chrome = trace_to_chrome(sample_tracer().to_dict())
        assert chrome["otherData"] == {"trace_id": "req-0123abcd"}
        for event in chrome["traceEvents"]:
            if event["ph"] == "X":
                assert event["args"]["trace_id"] == "req-0123abcd"

    def test_worker_subtree_moves_to_its_own_track(self):
        chrome = trace_to_chrome(sample_tracer().to_dict())
        events = {
            e["name"]: e for e in chrome["traceEvents"] if e["ph"] == "X"
        }
        tracks = {
            e["args"]["name"]: e["tid"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert events["task"]["tid"] == tracks["worker 3"]
        assert events["attempt"]["tid"] != events["task"]["tid"]

    def test_durations_are_microseconds(self):
        tracer = Tracer()
        with tracer.span("scan"):
            pass
        tracer.spans[0].seconds = 0.25
        tracer.spans[0].start_seconds = 0.5
        (event,) = [
            e
            for e in trace_to_chrome(tracer.to_dict())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert (event["ts"], event["dur"]) == (500000.0, 250000.0)

    def test_write_chrome_trace_accepts_all_three_shapes(self, tmp_path):
        tracer = sample_tracer()
        for label, document in (
            ("tracer", tracer),
            ("native", tracer.to_dict()),
            ("chrome", trace_to_chrome(tracer.to_dict())),
        ):
            path = str(tmp_path / f"{label}.json")
            write_chrome_trace(document, path)
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            assert "traceEvents" in loaded


# ----------------------------------------------------------------------
# Failed-attempt telemetry: tagged, never double-counted
# ----------------------------------------------------------------------


class TestFailedAttemptTelemetry:
    def worker_payload(self, failed=False):
        registry = MetricsRegistry()
        registry.counter(
            f"{registry.prefix}_buckets_replayed_total", "replays"
        ).inc(7)
        payload = {
            "worker_id": "2",
            "task_id": "implication-part-0001",
            "attempt": 1,
            "seconds": 0.1,
            "metrics": registry.to_dict(),
            "spans": [
                {"name": "scan", "start_seconds": 0.0, "seconds": 0.1}
            ],
        }
        if failed:
            payload["failed"] = True
            payload["failed_reason"] = "corrupt result"
        return payload

    def test_accepted_final_payload_merges_and_attaches(self):
        observer = RunObserver(run_id="r")
        observer.on_worker_telemetry(self.worker_payload(), final=True)
        text = observer.metrics.to_prometheus()
        assert "dmc_buckets_replayed_total 7" in text
        (task,) = observer.tracer.spans
        assert task.name == "task"
        assert not task.attributes.get("failed")
        assert task.children[0].attributes["worker_id"] == "2"

    def test_failed_payload_attaches_tagged_but_merges_nothing(self):
        observer = RunObserver(run_id="r")
        observer.on_worker_telemetry(
            self.worker_payload(failed=True), final=True
        )
        assert "dmc_buckets_replayed_total" not in (
            observer.metrics.to_prometheus()
        )
        (task,) = observer.tracer.spans
        assert task.attributes["failed"] is True
        assert task.attributes["failed_reason"] == "corrupt result"
        assert task.children[0].attributes["failed"] is True

    @pytest.mark.slow
    def test_retry_storm_trace_is_exact(self):
        """A corrupt first attempt: rules stay exact, the rejected
        attempt's spans appear tagged, each partition is accepted
        exactly once, and the archive round trip is lossless."""
        matrix = _matrix()
        want = find_implication_rules(matrix, 0.7).pairs()
        plan = WorkerFaultPlan(faults=(
            WorkerFault(
                mode="corrupt", task_id="implication-part-0001", attempts=1
            ),
        ))
        stats = PipelineStats()
        observer = RunObserver(run_id="storm")
        got = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=2,
            stats=stats, observer=observer, worker_faults=plan,
        ).pairs()
        assert got == want
        assert stats.task_retries >= 1
        tasks = [
            span
            for span in walk(observer.tracer.spans)
            if span.name == "task"
        ]
        failed = [s for s in tasks if s.attributes.get("failed")]
        accepted = [s for s in tasks if not s.attributes.get("failed")]
        assert len(failed) >= 1
        assert failed[0].attributes["task_id"] == "implication-part-0001"
        # exactly one accepted attempt per partition: never double-counted
        accepted_ids = sorted(s.attributes["task_id"] for s in accepted)
        assert accepted_ids == [
            f"implication-part-{i:04d}" for i in range(4)
        ]
        document = observer.tracer.to_dict()
        assert Tracer.from_dict(document).to_dict() == document


# ----------------------------------------------------------------------
# RED metrics and the access log at the HTTP edge
# ----------------------------------------------------------------------


class TestRouteLabel:
    @pytest.mark.parametrize("path,label", [
        ("/", "/"),
        ("/metrics", "/metrics"),
        ("/healthz", "/healthz"),
        ("/jobs", "/jobs"),
        ("/jobs/j-42", "/jobs/<id>"),
        ("/jobs/j-42/result", "/jobs/<id>/result"),
        ("/jobs?tenant=alpha", "/jobs"),
        ("/runs/run-9/trace", "/runs/<id>/trace"),
        ("/runs/run-9/deltas", "/runs/<id>/deltas"),
        ("/favicon.ico", "<other>"),
        ("/etc/passwd", "<other>"),
    ])
    def test_bounded_patterns(self, path, label):
        assert route_label(path) == label


class TestRequestAnalytics:
    @pytest.fixture
    def server(self, tmp_path):
        journal = RunJournal(str(tmp_path / "access.jsonl"), "svc")
        server = MetricsServer(MetricsRegistry(), journal=journal)
        try:
            yield server
        finally:
            server.close()
            journal.close()

    def test_mints_request_id_when_absent(self, server):
        code, _, _, headers = server.dispatch_request(
            "GET", "/healthz", b"", {}
        )
        assert code == 200
        assert re.fullmatch(r"[0-9a-f]{16}", headers["X-Request-Id"])

    def test_echoes_incoming_request_id(self, server):
        _, _, _, headers = server.dispatch_request(
            "GET", "/metrics", b"", {"X-Request-Id": "req-caller-7"}
        )
        assert headers["X-Request-Id"] == "req-caller-7"

    def test_red_counter_and_duration_histogram(self, server):
        server.dispatch_request("GET", "/healthz", b"", {})
        text = server.registry.to_prometheus()
        assert (
            'dmc_http_requests_total{method="GET",route="/healthz"'
            ',status="200",tenant="-"} 1'
        ) in text
        assert 'dmc_http_request_seconds_count{route="/healthz"} 1' in text

    def test_access_log_event_per_request(self, server, tmp_path):
        server.dispatch_request(
            "GET", "/jobs/j1/result", b"", {"X-Request-Id": "req-77"}
        )
        server.journal.flush()
        records = [
            r
            for r in read_journal(str(tmp_path / "access.jsonl"))
            if r.get("event") == "http-request"
        ]
        assert len(records) == 1
        record = records[0]
        assert record["method"] == "GET"
        assert record["route"] == "/jobs/<id>/result"
        assert record["status"] == 404
        assert record["request_id"] == "req-77"
        assert record["tenant"] == "-"
        assert record["duration_ms"] >= 0

    def test_live_server_round_trip_carries_header(self, server):
        request = urllib.request.Request(
            server.url + "/healthz",
            headers={"X-Request-Id": "req-live-1"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Request-Id"] == "req-live-1"


# ----------------------------------------------------------------------
# The service end to end: one trace_id from edge to archive
# ----------------------------------------------------------------------


def http(method, url, body=None, headers=None):
    request = urllib.request.Request(
        url, method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers=dict(headers or {}),
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                json.loads(response.read() or b"null"),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            json.loads(error.read() or b"null"),
            dict(error.headers),
        )


def spec_doc(job_id, **extra):
    document = {
        "job_id": job_id,
        "task": "implication",
        "threshold": "3/4",
        "data": {"transactions": TRANSACTIONS},
    }
    document.update(extra)
    return document


class TestServiceTracing:
    @pytest.fixture
    def service(self, tmp_path):
        svc = MiningService(str(tmp_path / "state"), n_slots=0, serve=True)
        try:
            yield svc
        finally:
            svc.close()

    def test_request_id_becomes_the_run_trace_id(self, service):
        base = service.server.url
        code, _, _ = http(
            "POST", base + "/jobs", spec_doc("t1"),
            headers={"X-Request-Id": "req-edge-42"},
        )
        assert code == 201
        assert service.get_job("t1").spec.trace_id == "req-edge-42"
        service.run_until_idle()
        archive = service.read_trace("t1")
        assert archive["trace_id"] == "req-edge-42"
        attempts = [s for s in archive["spans"] if s["name"] == "attempt"]
        assert len(attempts) == 1
        assert attempts[0]["attributes"]["trace_id"] == "req-edge-42"
        # the engine's own phase spans nest under the attempt span
        assert attempts[0]["children"]

    def test_minted_id_used_when_no_header_sent(self, service):
        base = service.server.url
        _, _, headers = http("POST", base + "/jobs", spec_doc("t2"))
        minted = headers["X-Request-Id"]
        assert service.get_job("t2").spec.trace_id == minted

    def test_get_trace_returns_catapult_json(self, service):
        base = service.server.url
        http(
            "POST", base + "/jobs", spec_doc("t3"),
            headers={"X-Request-Id": "req-t3"},
        )
        service.run_until_idle()
        code, chrome, _ = http("GET", base + "/runs/t3/trace")
        assert code == 200
        assert chrome["displayTimeUnit"] == "ms"
        assert chrome["otherData"] == {"trace_id": "req-t3"}
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["args"]["trace_id"] == "req-t3"

    def test_trace_of_unknown_run_is_404(self, service):
        code, document, _ = http(
            "GET", service.server.url + "/runs/ghost/trace"
        )
        assert code == 404
        assert document["job_id"] == "ghost"

    def test_archive_equals_reconstructed_tree(self, service):
        base = service.server.url
        http("POST", base + "/jobs", spec_doc("t4"))
        service.run_until_idle()
        archive = service.read_trace("t4")
        expected = dict(archive)
        expected.pop("job_id", None)
        assert Tracer.from_dict(archive).to_dict() == expected


class TestSchedulerRetryArchive:
    def test_failed_attempts_archived_and_tagged(self, tmp_path):
        index = JobIndex(str(tmp_path))
        index.create(
            JobSpec.from_mapping(
                spec_doc("j1", max_attempts=3, trace_id="req-flaky")
            )
        )
        attempts = []

        def flaky(record, workdir, observer, **kwargs):
            attempts.append(record.attempts)
            # the attempt's engine work shows up under the attempt span
            with observer.tracer.span("scan", rows=6):
                pass
            if len(attempts) < 3:
                raise SupervisorError("worker pool fell over")
            return '{"rules": []}', 0

        scheduler = Scheduler(
            index, n_slots=0, executor=flaky, retry_base_delay=0.0
        )
        scheduler.enqueue("j1")
        scheduler.run_until_idle()
        assert index.get("j1").state == DONE
        archive = index.read_trace("j1")
        assert archive["trace_id"] == "req-flaky"
        spans = [s for s in archive["spans"] if s["name"] == "attempt"]
        assert [s["attributes"]["attempt"] for s in spans] == [1, 2, 3]
        assert [
            bool(s["attributes"].get("failed")) for s in spans
        ] == [True, True, False]
        assert "SupervisorError" in spans[0]["attributes"]["failed_reason"]
        for span in spans:  # every attempt kept its engine spans
            assert [c["name"] for c in span["children"]] == ["scan"]
        expected = dict(archive)
        expected.pop("job_id", None)
        assert Tracer.from_dict(archive).to_dict() == expected


class TestJobSpecTraceId:
    def test_round_trips_through_mappings(self):
        spec = JobSpec.from_mapping(spec_doc("j1", trace_id="req-9"))
        assert spec.trace_id == "req-9"
        assert JobSpec.from_mapping(spec.to_mapping()).trace_id == "req-9"

    def test_defaults_to_none(self):
        assert JobSpec.from_mapping(spec_doc("j1")).trace_id is None

    @pytest.mark.parametrize("bad", ["", "   ", 42, ["x"]])
    def test_rejects_non_string_or_blank(self, bad):
        with pytest.raises(ValueError):
            JobSpec.from_mapping(spec_doc("j1", trace_id=bad))


# ----------------------------------------------------------------------
# Live delta-apply spans
# ----------------------------------------------------------------------


class TestLiveDeltaSpans:
    def test_each_applied_batch_opens_a_tagged_span(self, tmp_path):
        tracer = Tracer(trace_id="req-live")
        miner = LiveMiner(
            str(tmp_path / "live"), "implication", "2/3", tracer=tracer
        )
        miner.submit(1, TRANSACTIONS[:3])
        miner.submit(2, TRANSACTIONS[3:])
        spans = [s for s in tracer.spans if s.name == "delta-apply"]
        assert [s.attributes["seq"] for s in spans] == [1, 2]
        for span in spans:
            assert span.attributes["trace_id"] == "req-live"
            assert span.attributes["n_rules"] >= 0
            assert "appeared" in span.attributes

    def test_recovery_replay_spans_are_marked(self, tmp_path):
        root = str(tmp_path / "live")
        LiveMiner(root, "implication", "2/3").submit(1, TRANSACTIONS)
        tracer = Tracer(trace_id="req-re")
        miner = LiveMiner(root, "implication", "2/3", tracer=tracer)
        miner.submit(2, [["a", "c"]])
        recovered = [
            s.attributes.get("recovered")
            for s in tracer.spans
            if s.name == "delta-apply"
        ]
        assert True not in recovered or recovered[0] is True
        # the new batch itself is a live apply, not a recovery
        assert recovered[-1] is False


# ----------------------------------------------------------------------
# Journal summaries: span table and delta totals
# ----------------------------------------------------------------------


class TestJournalSummaries:
    def test_span_table_folds_repeated_phases(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal(path, "r1")
        journal.emit("phase-start", name="scan")
        journal.emit("phase-end", name="scan", seconds=1.0)
        journal.emit("phase-start", name="scan")
        journal.emit("phase-end", name="scan", seconds=3.0)
        journal.emit("phase-start", name="spill")
        journal.emit("phase-end", name="spill", seconds=0.5)
        journal.close()
        summary = summarize_journal(path)
        table = {row["name"]: row for row in summary["span_table"]}
        assert table["scan"]["count"] == 2
        assert table["scan"]["total_seconds"] == pytest.approx(4.0)
        assert table["scan"]["mean_seconds"] == pytest.approx(2.0)
        assert table["scan"]["max_seconds"] == pytest.approx(3.0)
        assert table["spill"]["count"] == 1

    def test_delta_totals_fold_over_batches(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        journal = RunJournal(path, "r2")
        journal.emit(
            "delta-applied", seq=1, rows=10, appeared=3, disappeared=0,
            changed=3, n_rules=3, readmitted=0, replayed_rows=0,
            degraded=False, recovered=False,
        )
        journal.emit(
            "delta-applied", seq=2, rows=5, appeared=1, disappeared=2,
            changed=3, n_rules=2, readmitted=1, replayed_rows=4,
            degraded=True, recovered=False,
        )
        journal.close()
        deltas = summarize_journal(path)["deltas"]
        assert deltas["batches"] == 2
        assert deltas["rows"] == 15
        assert deltas["appeared"] == 4
        assert deltas["disappeared"] == 2
        assert deltas["readmitted"] == 1
        assert deltas["replayed_rows"] == 4
        assert deltas["degraded"] == 1
        assert deltas["n_rules"] == 2
        assert deltas["last_seq"] == 2

    def test_batch_run_summary_has_no_deltas(self, tmp_path):
        path = str(tmp_path / "batch.jsonl")
        journal = RunJournal(path, "r3")
        journal.emit("phase-end", name="scan", seconds=1.0)
        journal.close()
        assert summarize_journal(path)["deltas"] is None


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------


def spin(seconds: float) -> int:
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_folded_output_format(self, tmp_path):
        path = str(tmp_path / "run.folded")
        with SamplingProfiler(path, interval=0.001) as profiler:
            spin(0.3)
        assert profiler.samples > 0
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert all(":" in segment for segment in stack.split(";"))
        # the busy loop must dominate some sampled stack
        assert any("spin" in line for line in lines)

    def test_counts_accumulate_per_stack(self):
        profiler = SamplingProfiler(interval=0.001).start()
        spin(0.2)
        profiler.stop()
        assert profiler.samples == sum(profiler.counts.values())

    def test_empty_run_writes_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.folded")
        profiler = SamplingProfiler(path, interval=5.0)
        profiler.start()
        profiler.stop()
        assert profiler.folded() == ""
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == ""

    def test_stop_is_idempotent(self, tmp_path):
        profiler = SamplingProfiler(str(tmp_path / "x.folded"))
        profiler.start()
        assert profiler.stop() == profiler.stop()

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_fold_stack_neutralizes_separator(self):
        import sys

        frame = sys._getframe()
        folded = fold_stack(frame)
        segments = folded.split(";")
        assert segments[-1].endswith(":test_fold_stack_neutralizes_separator")
        assert all(";" not in segment for segment in segments)

    def test_mine_profile_config_writes_folded_file(self, tmp_path):
        path = str(tmp_path / "mine.folded")
        result = repro.mine(
            TRANSACTIONS, task="implication", threshold="3/4",
            profile=path,
        )
        assert result.rules  # profiling must not perturb the mine
        assert os.path.exists(path)

    def test_blank_profile_path_rejected(self):
        with pytest.raises(ValueError):
            repro.MiningConfig(profile="   ")


# ----------------------------------------------------------------------
# The trace CLI
# ----------------------------------------------------------------------


class TestTraceCLI:
    def native_trace_file(self, tmp_path):
        path = str(tmp_path / "trace.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(sample_tracer().to_dict(), handle)
        return path

    def test_export_to_stdout(self, tmp_path, capsys):
        path = self.native_trace_file(tmp_path)
        assert cli_main(["trace", "export", path]) == 0
        chrome = json.loads(capsys.readouterr().out)
        assert chrome["otherData"] == {"trace_id": "req-0123abcd"}
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_export_to_file(self, tmp_path, capsys):
        path = self.native_trace_file(tmp_path)
        out = str(tmp_path / "chrome.json")
        assert cli_main(["trace", "export", path, "--out", out]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            assert "traceEvents" in json.load(handle)

    def test_export_passes_chrome_documents_through(
        self, tmp_path, capsys
    ):
        chrome = trace_to_chrome(sample_tracer().to_dict())
        path = str(tmp_path / "chrome-in.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(chrome, handle)
        assert cli_main(["trace", "export", path]) == 0
        assert json.loads(capsys.readouterr().out) == chrome

    def test_summarize_prints_span_table(self, tmp_path, capsys):
        path = self.native_trace_file(tmp_path)
        assert cli_main(["trace", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "trace req-0123abcd: 4 spans" in out
        assert "attempt" in out and "task" in out

    def test_summarize_counts_failed_attempt_spans(
        self, tmp_path, capsys
    ):
        tracer = Tracer(trace_id="req-f")
        with tracer.span("attempt", failed=True, failed_reason="timeout"):
            pass
        with tracer.span("attempt"):
            pass
        path = str(tmp_path / "failed.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(tracer.to_dict(), handle)
        assert cli_main(["trace", "summarize", path]) == 0
        assert "(1 on failed attempts)" in capsys.readouterr().out

    def test_summarize_rejects_chrome_documents(self, tmp_path, capsys):
        chrome = trace_to_chrome(sample_tracer().to_dict())
        path = str(tmp_path / "chrome.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(chrome, handle)
        assert cli_main(["trace", "summarize", path]) == 1

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert cli_main(
            ["trace", "export", str(tmp_path / "nope.json")]
        ) == 1
