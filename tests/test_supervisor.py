"""The supervised parallel runtime (repro.runtime.supervisor).

The fault-matrix tests here spawn real worker processes and inject
real crashes/hangs, so most are marked ``slow``; CI runs them with
``--runslow -k "crash or hang or corrupt or resume"``.  Every recovery
path is asserted to produce the rule set of the serial miner —
exactness is the whole point of quarantine-instead-of-drop.
"""

import json
import os
import signal

import pytest

from repro.core.dmc_imp import find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.partitioned import (
    find_implication_rules_partitioned,
    find_similarity_rules_partitioned,
)
from repro.core.stats import PipelineStats
from repro.matrix.binary_matrix import BinaryMatrix
from repro.runtime import faults
from repro.runtime.faults import (
    Fault,
    FaultPlan,
    SimulatedCrash,
    WorkerFault,
    WorkerFaultPlan,
)
from repro.runtime.supervisor import (
    ShardLedger,
    Supervisor,
    SupervisorError,
    SupervisorReport,
    Task,
    graceful_interrupts,
)
from tests.conftest import random_binary_matrix


def _double(x):
    """Picklable task function for the pool tests."""
    return 2 * x


class _FailsThenSucceeds:
    """In-process flaky task fn (serial mode never pickles it)."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def __call__(self, payload):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"transient failure {self.calls}")
        return payload


def _tasks(n: int):
    return [Task(task_id=f"t-{i}", payload=i) for i in range(n)]


def _matrix(seed: int = 7, rows: int = 80, cols: int = 16) -> BinaryMatrix:
    import numpy as np

    generator = np.random.default_rng(seed)
    dense = (generator.random((rows, cols)) < 0.3).astype(np.uint8)
    return BinaryMatrix.from_dense(dense)


# ----------------------------------------------------------------------
# Serial mode and parameter validation (no processes spawned)
# ----------------------------------------------------------------------


class TestSerial:
    def test_single_worker_runs_in_process(self):
        report = Supervisor(_double, n_workers=1).run(_tasks(3))
        assert report.mode == "serial"
        assert report.results(_tasks(3)) == [0, 2, 4]
        assert report.worker_restarts == 0

    def test_degrades_when_multiprocessing_unavailable(self, monkeypatch):
        import repro.runtime.transport as transport_module

        monkeypatch.setattr(
            transport_module, "_mp_available", lambda: False
        )
        report = Supervisor(_double, n_workers=4).run(_tasks(4))
        assert report.mode == "serial"
        assert report.results(_tasks(4)) == [0, 2, 4, 6]

    def test_retries_transient_failures(self):
        fn = _FailsThenSucceeds(failures=2)
        supervisor = Supervisor(
            fn, n_workers=1, task_retries=2, backoff_base=0.001
        )
        report = supervisor.run(_tasks(1))
        assert report.results(_tasks(1)) == [0]
        assert report.task_retries == 2

    def test_raises_when_retries_exhausted(self):
        fn = _FailsThenSucceeds(failures=99)
        supervisor = Supervisor(
            fn, n_workers=1, task_retries=1, backoff_base=0.001
        )
        with pytest.raises(SupervisorError):
            supervisor.run(_tasks(1))

    def test_invalid_serial_result_raises(self):
        supervisor = Supervisor(
            _double, n_workers=1, validate=lambda result: False
        )
        with pytest.raises(SupervisorError):
            supervisor.run(_tasks(1))

    def test_duplicate_task_ids_rejected(self):
        tasks = [Task("same", 1), Task("same", 2)]
        with pytest.raises(ValueError, match="duplicate"):
            Supervisor(_double).run(tasks)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Supervisor(_double, task_retries=-1)
        with pytest.raises(ValueError):
            Supervisor(_double, task_timeout=0)


# ----------------------------------------------------------------------
# Graceful interrupts
# ----------------------------------------------------------------------


class TestGracefulInterrupts:
    def test_sigterm_becomes_keyboard_interrupt(self):
        import time

        with pytest.raises(KeyboardInterrupt):
            with graceful_interrupts():
                os.kill(os.getpid(), signal.SIGTERM)
                # The handler fires at the next bytecode boundary.
                time.sleep(1.0)
                pytest.fail("SIGTERM was not delivered")

    def test_previous_handler_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with graceful_interrupts():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before


# ----------------------------------------------------------------------
# Shard ledger (no processes spawned)
# ----------------------------------------------------------------------


class TestShardLedger:
    def test_round_trip(self, tmp_path):
        ledger = ShardLedger(str(tmp_path), fingerprint={"k": "v"})
        ledger.record("a", [1, 2])
        ledger.record("b", [3])
        fresh = ShardLedger(str(tmp_path), fingerprint={"k": "v"})
        assert fresh.load() == {"a": [1, 2], "b": [3]}

    def test_fingerprint_mismatch_discards(self, tmp_path):
        ledger = ShardLedger(str(tmp_path), fingerprint={"k": "v"})
        ledger.record("a", [1])
        other = ShardLedger(str(tmp_path), fingerprint={"k": "DIFFERENT"})
        assert other.load() == {}
        assert not os.path.exists(ledger.path)  # stale file cleared

    def test_torn_file_discards(self, tmp_path):
        ledger = ShardLedger(str(tmp_path), fingerprint={})
        with open(ledger.path, "w", encoding="utf-8") as handle:
            handle.write('{"version": 1, "fingerprint"')  # torn write
        assert ledger.load() == {}

    def test_clear_removes_manifest(self, tmp_path):
        ledger = ShardLedger(str(tmp_path), fingerprint={})
        ledger.record("a", [1])
        ledger.clear()
        assert not os.path.exists(ledger.path)
        assert ledger.load() == {}

    def test_preloaded_results_skip_execution(self, tmp_path):
        ledger = ShardLedger(str(tmp_path), fingerprint={})
        ledger.record("t-0", 999)
        supervisor = Supervisor(_double, n_workers=1, ledger=ledger)
        report = supervisor.run(_tasks(2))
        assert report.outcomes["t-0"].from_ledger
        assert report.outcomes["t-0"].result == 999  # not recomputed
        assert report.outcomes["t-1"].result == 2


# ----------------------------------------------------------------------
# Pool mode with real spawned workers
# ----------------------------------------------------------------------


class TestPool:
    def test_clean_pool_matches_serial(self):
        tasks = _tasks(4)
        report = Supervisor(_double, n_workers=2).run(tasks)
        assert report.mode == "pool"
        assert report.results(tasks) == [0, 2, 4, 6]
        assert report.worker_restarts == 0
        assert report.tasks_quarantined == 0

    @pytest.mark.slow
    def test_crash_recovery_matches_serial_rules(self):
        matrix = _matrix()
        want = find_implication_rules(matrix, 0.7).pairs()
        plan = WorkerFaultPlan(faults=(
            WorkerFault(
                mode="crash", task_id="implication-part-0001", attempts=1
            ),
        ))
        stats = PipelineStats()
        got = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=2,
            stats=stats, worker_faults=plan,
        ).pairs()
        assert got == want
        assert stats.worker_restarts >= 1
        assert stats.task_retries >= 1
        assert stats.tasks_quarantined == 0

    @pytest.mark.slow
    def test_crash_quarantine_preserves_rules(self):
        matrix = _matrix()
        want = find_implication_rules(matrix, 0.7).pairs()
        plan = WorkerFaultPlan(faults=(
            WorkerFault(
                mode="crash", task_id="implication-part-0002", attempts=99
            ),
        ))
        stats = PipelineStats()
        got = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=2,
            stats=stats, task_retries=1, worker_faults=plan,
        ).pairs()
        assert got == want  # quarantine re-runs serially: never dropped
        assert stats.tasks_quarantined == 1
        assert stats.worker_restarts >= 2

    @pytest.mark.slow
    @pytest.mark.timeout(180)
    def test_hang_recovery_matches_serial_rules(self):
        matrix = _matrix()
        want = find_implication_rules(matrix, 0.7).pairs()
        plan = WorkerFaultPlan(faults=(
            WorkerFault(
                mode="hang", task_id="implication-part-0000", attempts=1
            ),
        ))
        stats = PipelineStats()
        got = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=2,
            stats=stats, task_timeout=1.0, worker_faults=plan,
        ).pairs()
        assert got == want
        assert stats.worker_restarts >= 1

    @pytest.mark.slow
    def test_corrupt_result_recovery_matches_serial_rules(self):
        matrix = _matrix()
        want = find_similarity_rules(matrix, 0.4).pairs()
        plan = WorkerFaultPlan(faults=(
            WorkerFault(
                mode="corrupt", task_id="similarity-part-0001", attempts=1
            ),
        ))
        stats = PipelineStats()
        got = find_similarity_rules_partitioned(
            matrix, 0.4, n_partitions=4, n_workers=2,
            stats=stats, worker_faults=plan,
        ).pairs()
        assert got == want
        assert stats.task_retries >= 1

    @pytest.mark.slow
    def test_any_task_crash_fault_still_exact(self):
        """``task_id=None`` crashes every first attempt; all recover."""
        matrix = _matrix()
        want = find_implication_rules(matrix, 0.7).pairs()
        plan = WorkerFaultPlan(faults=(
            WorkerFault(mode="crash", task_id=None, attempts=1),
        ))
        got = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=3, n_workers=2, worker_faults=plan,
        ).pairs()
        assert got == want


# ----------------------------------------------------------------------
# Ledger resume across a supervisor death
# ----------------------------------------------------------------------


class TestResume:
    @pytest.mark.slow
    def test_resume_after_supervisor_crash(self, tmp_path):
        matrix = _matrix()
        want = find_implication_rules(matrix, 0.7).pairs()
        ledger_dir = str(tmp_path / "ledger")

        # The third ledger write kills the supervisor process itself.
        plan = FaultPlan(
            [Fault("ledger.save", first=3, error=SimulatedCrash)]
        )
        with pytest.raises(SimulatedCrash):
            with faults.install(plan):
                find_implication_rules_partitioned(
                    matrix, 0.7, n_partitions=4, n_workers=2,
                    ledger_dir=ledger_dir,
                )

        # The atomic manifest survived with the first two partitions.
        with open(os.path.join(ledger_dir, "ledger.json")) as handle:
            recorded = json.load(handle)["tasks"]
        assert len(recorded) == 2

        # The re-run resumes the unfinished partitions and is exact.
        stats = PipelineStats()
        got = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=2,
            ledger_dir=ledger_dir, stats=stats,
        ).pairs()
        assert got == want
        assert not os.path.exists(os.path.join(ledger_dir, "ledger.json"))

    @pytest.mark.slow
    def test_resume_ignores_ledger_for_different_parameters(self, tmp_path):
        matrix = _matrix()
        ledger_dir = str(tmp_path / "ledger")
        plan = FaultPlan(
            [Fault("ledger.save", first=2, error=SimulatedCrash)]
        )
        with pytest.raises(SimulatedCrash):
            with faults.install(plan):
                find_implication_rules_partitioned(
                    matrix, 0.7, n_partitions=4, n_workers=2,
                    ledger_dir=ledger_dir,
                )
        # Different threshold: the stale ledger must not poison the run.
        want = find_implication_rules(matrix, 0.8).pairs()
        got = find_implication_rules_partitioned(
            matrix, 0.8, n_partitions=4, n_workers=2,
            ledger_dir=ledger_dir,
        ).pairs()
        assert got == want


# ----------------------------------------------------------------------
# Streaming pipeline: interrupt mid-pass-2 leaves a loadable checkpoint
# ----------------------------------------------------------------------


class TestStreamInterrupt:
    def test_sigint_mid_pass2_checkpoint_resume(self, tmp_path):
        from repro.matrix.stream import MatrixSource, stream_implication_rules

        matrix = random_binary_matrix(3)
        want = find_implication_rules(matrix, 0.7).pairs()
        checkpoint_dir = str(tmp_path / "ckpt")

        plan = FaultPlan(
            [Fault("pass2.row", first=2, error=KeyboardInterrupt)]
        )
        with pytest.raises(KeyboardInterrupt):
            with faults.install(plan):
                stream_implication_rules(
                    MatrixSource(matrix), 0.7,
                    checkpoint_dir=checkpoint_dir,
                )

        # The pass-1 checkpoint survived; the re-run resumes at pass 2
        # (no pre-scan phase) and mines the exact rule set.
        stats = PipelineStats()
        got = stream_implication_rules(
            MatrixSource(matrix), 0.7,
            checkpoint_dir=checkpoint_dir, stats=stats,
        ).pairs()
        assert got == want
        assert "pre-scan" not in stats.timer.seconds


# ----------------------------------------------------------------------
# Facade exposure (repro.mine / MiningConfig)
# ----------------------------------------------------------------------


class TestFacade:
    def test_mining_config_validates_supervised_knobs(self):
        from repro.api import MiningConfig

        with pytest.raises(ValueError):
            MiningConfig(threshold=0.9, task_retries=-1)
        with pytest.raises(ValueError):
            MiningConfig(threshold=0.9, task_timeout=0.0)

    def test_mine_supervised_partitioned(self, tmp_path):
        import repro

        matrix = _matrix(rows=60, cols=12)
        want = find_implication_rules(matrix, 0.7).pairs()
        result = repro.mine(
            matrix, minconf=0.7, engine="partitioned", n_partitions=3,
            n_workers=2, task_retries=1,
            ledger_dir=str(tmp_path / "ledger"),
        )
        assert result.engine == "partitioned"
        assert result.rules.pairs() == want

    def test_observer_counters_exported(self):
        from repro.observe import RunObserver

        matrix = _matrix(rows=60, cols=12)
        observer = RunObserver()
        stats = PipelineStats()
        plan = WorkerFaultPlan(faults=(
            WorkerFault(
                mode="crash", task_id="implication-part-0001", attempts=1
            ),
        ))
        find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=3, n_workers=2,
            stats=stats, observer=observer, worker_faults=plan,
        )
        observer.finish(stats)
        text = observer.metrics.to_prometheus()
        assert "dmc_worker_restarts_total 1" in text
        assert "dmc_task_retries_total 1" in text
        assert "dmc_tasks_quarantined_total 0" in text  # exists at zero
        assert "dmc_task_seconds" in text
        assert 'dmc_tasks_completed_total{path="pool"} 3' in text
        blob = json.dumps(observer.metrics.to_dict())
        assert "dmc_worker_restarts_total" in blob
        assert "dmc_tasks_quarantined_total" in blob


# ----------------------------------------------------------------------
# Clock discipline: interval math must survive wall-clock steps
# ----------------------------------------------------------------------


class TestMonotonicClock:
    """Hang detection and heartbeats run on ``time.monotonic()`` —
    an NTP step (or DST jump) on the coordinator host must neither
    fire false hang kills nor mask real hangs."""

    def _handle(self):
        from repro.runtime.transport import _WorkerHandle

        class _Beat:
            value = 0.0

        handle = _WorkerHandle(0, None, None, None, _Beat())
        handle.task = Task(task_id="t-0", payload=0)
        return handle

    def test_hung_measures_from_last_heartbeat(self):
        handle = self._handle()
        handle.assigned_at = 100.0
        handle.heartbeat.value = 101.0
        assert not handle.hung(105.0, timeout=10.0)
        assert handle.hung(112.0, timeout=10.0)

    def test_not_hung_before_first_heartbeat_of_assignment(self):
        # The heartbeat still carries the *previous* task's stamp:
        # the worker is importing/unpickling, not hanging.
        handle = self._handle()
        handle.assigned_at = 100.0
        handle.heartbeat.value = 50.0
        assert not handle.hung(1000.0, timeout=1.0)

    def test_no_timeout_never_hangs(self):
        handle = self._handle()
        handle.assigned_at = 0.0
        handle.heartbeat.value = 1.0
        assert not handle.hung(1e9, timeout=None)

    def test_idle_worker_never_hangs(self):
        handle = self._handle()
        handle.task = None
        assert not handle.hung(1e9, timeout=0.001)

    @pytest.mark.timeout(180)
    def test_pool_run_immune_to_wall_clock_steps(self, monkeypatch):
        """A wall clock frozen *and* jumped backwards must not affect
        the pool: every supervisor-side interval is monotonic.  (Wall
        time is only ever used for reporting and cross-host lease
        expiry.)"""
        import repro.runtime.supervisor as supervisor_mod
        import repro.runtime.transport as transport_mod

        class SteppingClock:
            """time.time() that jumps an hour backwards per call."""

            def __init__(self):
                self.now = 1e9

            def __call__(self):
                self.now -= 3600.0
                return self.now

        stepping = SteppingClock()
        monkeypatch.setattr(supervisor_mod.time, "time", stepping)
        monkeypatch.setattr(transport_mod.time, "time", stepping)
        report = Supervisor(
            _double, n_workers=2, task_timeout=30.0
        ).run(_tasks(4))
        assert report.results(_tasks(4)) == [0, 2, 4, 6]
        assert report.worker_restarts == 0
        assert report.tasks_quarantined == 0


# ----------------------------------------------------------------------
# Dual-coordinator ledger fencing
# ----------------------------------------------------------------------


class TestLedgerOwnership:
    """Two coordinators pointed at one ledger_dir: the second takes
    over, the first gets a typed ``LedgerFenced`` on its next write
    instead of silently interleaving manifests."""

    def test_second_ledger_fences_the_first(self, tmp_path):
        from repro.runtime.supervisor import LedgerFenced

        first = ShardLedger(str(tmp_path), {"kind": "demo"})
        first.record("t-0", [1, 2])
        second = ShardLedger(str(tmp_path), {"kind": "demo"})
        with pytest.raises(LedgerFenced):
            first.record("t-1", [3, 4])
        with pytest.raises(LedgerFenced):
            first.clear()
        # The new owner keeps working, with the old owner's state.
        assert second.load() == {"t-0": [1, 2]}
        second.record("t-1", [3, 4])
        assert second.load() == {"t-0": [1, 2], "t-1": [3, 4]}

    def test_ledger_fenced_is_a_lease_fenced(self):
        from repro.runtime.storage import LeaseFenced
        from repro.runtime.supervisor import LedgerFenced

        assert issubclass(LedgerFenced, LeaseFenced)

    def test_fenced_coordinator_cannot_corrupt_manifest(self, tmp_path):
        from repro.runtime.supervisor import LedgerFenced

        first = ShardLedger(str(tmp_path), {"kind": "demo"})
        first.record("t-0", [1])
        second = ShardLedger(str(tmp_path), {"kind": "demo"})
        second.record("t-1", [2])
        for _ in range(3):
            with pytest.raises(LedgerFenced):
                first.record("t-stale", [9])
        assert "t-stale" not in second.load()
