"""Public API surface integrity."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.matrix",
    "repro.baselines",
    "repro.datasets",
    "repro.mining",
    "repro.experiments",
    "repro.runtime",
    "repro.observe",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    exports = list(package.__all__)
    assert exports == sorted(exports), package_name
    assert len(exports) == len(set(exports)), package_name


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_names():
    """The names the README quickstart uses must stay exported."""
    import repro

    for name in (
        "BinaryMatrix",
        "find_implication_rules",
        "find_similarity_rules",
        "PruningOptions",
        "BitmapConfig",
        "load_dataset",
        "mine",
        "MiningConfig",
        "MiningResult",
        "RunObserver",
    ):
        assert hasattr(repro, name)


def test_every_public_module_has_a_docstring():
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent / "src"
    for path in root.rglob("*.py"):
        source = path.read_text(encoding="utf-8")
        stripped = source.lstrip()
        assert stripped.startswith('"""') or stripped.startswith(
            "'''"
        ), f"{path} lacks a module docstring"


def test_cli_entry_point_importable():
    from repro.cli import main

    assert callable(main)
