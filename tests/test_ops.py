"""Packed-bitmap operations (repro.matrix.ops, Section 4.2)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.matrix.ops import (
    bitmaps_equal,
    count_and,
    count_and_not,
    count_ones,
    pack_rows,
)


def _pack(bits):
    return np.packbits(np.array(bits, dtype=np.uint8))


class TestCounting:
    def test_count_ones(self):
        assert count_ones(_pack([1, 0, 1, 1])) == 3

    def test_count_and_not_is_misses(self):
        a = _pack([1, 1, 0, 1])
        b = _pack([1, 0, 0, 0])
        assert count_and_not(a, b) == 2

    def test_count_and_is_hits(self):
        a = _pack([1, 1, 0, 1])
        b = _pack([1, 0, 1, 1])
        assert count_and(a, b) == 2

    def test_bitmaps_equal(self):
        assert bitmaps_equal(_pack([1, 0]), _pack([1, 0]))
        assert not bitmaps_equal(_pack([1, 0]), _pack([0, 1]))

    @given(
        bits_a=st.lists(st.booleans(), min_size=1, max_size=100),
        bits_b=st.lists(st.booleans(), min_size=1, max_size=100),
    )
    def test_counts_match_python_sets(self, bits_a, bits_b):
        n = min(len(bits_a), len(bits_b))
        bits_a, bits_b = bits_a[:n], bits_b[:n]
        set_a = {i for i, bit in enumerate(bits_a) if bit}
        set_b = {i for i, bit in enumerate(bits_b) if bit}
        a, b = _pack(bits_a), _pack(bits_b)
        assert count_ones(a) == len(set_a)
        assert count_and(a, b) == len(set_a & set_b)
        assert count_and_not(a, b) == len(set_a - set_b)


class TestPackRows:
    def test_bitmap_per_column(self):
        rows = [(10, (0, 2)), (11, (2,)), (12, (0,))]
        bitmaps = pack_rows(rows)
        assert set(bitmaps.columns()) == {0, 2}
        assert bitmaps.ones(0) == 2
        assert bitmaps.ones(2) == 2
        assert bitmaps.misses(0, 2) == 1
        assert bitmaps.hits(0, 2) == 1

    def test_absent_column_is_all_zero(self):
        bitmaps = pack_rows([(0, (1,))])
        assert bitmaps.ones(9) == 0
        assert bitmaps.misses(1, 9) == 1
        assert bitmaps.misses(9, 1) == 0

    def test_column_filter(self):
        bitmaps = pack_rows([(0, (1, 2, 3))], columns=[2])
        assert set(bitmaps.columns()) == {2}

    def test_identical(self):
        bitmaps = pack_rows([(0, (1, 2)), (1, (1, 2)), (2, (3,))])
        assert bitmaps.identical(1, 2)
        assert not bitmaps.identical(1, 3)

    def test_empty_window(self):
        bitmaps = pack_rows([])
        assert len(bitmaps) == 0
        assert bitmaps.ones(0) == 0

    def test_memory_bytes_counts_packed_size(self):
        bitmaps = pack_rows([(r, (0,)) for r in range(16)])
        assert bitmaps.memory_bytes() == 2  # 16 bits -> 2 bytes

    def test_contains_and_len(self):
        bitmaps = pack_rows([(0, (4, 5))])
        assert 4 in bitmaps and 5 in bitmaps and 6 not in bitmaps
        assert len(bitmaps) == 2
