"""The observability layer: tracer, metrics, observers, exporters."""

import json

import pytest

from repro.core.dmc_imp import PruningOptions, find_implication_rules
from repro.core.miss_counting import BitmapConfig
from repro.baselines.bruteforce import implication_rules_bruteforce
from repro.datasets.registry import load_dataset
from repro.matrix.binary_matrix import BinaryMatrix
from repro.mining.export import rules_to_json
from repro.observe import (
    NULL_OBSERVER,
    ConsoleProgress,
    MetricsRegistry,
    NullObserver,
    ProgressObserver,
    RunObserver,
    Tracer,
    load_metrics,
    load_trace,
    metrics_format_for,
    write_metrics,
    write_trace,
)


SMALL = BinaryMatrix.from_dense(
    [
        [1, 1, 0, 1],
        [1, 1, 1, 0],
        [0, 1, 1, 1],
        [1, 0, 1, 1],
        [1, 1, 0, 0],
        [1, 1, 1, 1],
    ]
)


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner-a"):
                tracer.annotate(rows=3)
            with tracer.span("inner-b"):
                pass
        with tracer.span("second"):
            pass

        assert [span.name for span in tracer.spans] == ["outer", "second"]
        outer = tracer.spans[0]
        assert [child.name for child in outer.children] == [
            "inner-a", "inner-b",
        ]
        assert outer.attributes == {"kind": "test"}
        assert outer.children[0].attributes == {"rows": 3}
        assert outer.children[0].children == []

    def test_span_timing_is_monotone(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, = tracer.spans
        inner, = outer.children
        assert outer.seconds >= inner.seconds >= 0
        assert inner.start_seconds >= outer.start_seconds

    def test_depth_and_current(self):
        tracer = Tracer()
        assert tracer.depth == 0 and tracer.current() is None
        with tracer.span("a"):
            assert tracer.depth == 1
            assert tracer.current().name == "a"
            with tracer.span("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0

    def test_annotate_outside_any_span_is_a_noop(self):
        tracer = Tracer()
        tracer.annotate(lost=True)
        assert tracer.spans == []

    def test_to_dict_round_trips_through_json(self):
        tracer = Tracer()
        with tracer.span("phase", rows=10):
            pass
        document = json.loads(tracer.to_json())
        assert document["version"] == 1
        assert document["spans"][0]["name"] == "phase"
        assert document["spans"][0]["attributes"] == {"rows": 10}

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.depth == 0
        assert tracer.spans[0].seconds >= 0


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("dmc_events_total", "Events.", kind="x")
        counter.inc()
        counter.inc(2)
        assert registry.value("dmc_events_total", kind="x") == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

        gauge = registry.gauge("dmc_level", "Level.")
        gauge.set(5)
        gauge.set_max(3)
        assert registry.value("dmc_level") == 5

        histogram = registry.histogram(
            "dmc_sizes", "Sizes.", buckets=(1, 10)
        )
        for value in (0.5, 5, 50):
            histogram.observe(value)
        assert histogram.cumulative() == [
            (1.0, 1), (10.0, 2), (float("inf"), 3),
        ]

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("dmc_thing", "A counter.")
        with pytest.raises(ValueError):
            registry.gauge("dmc_thing", "Now a gauge?")

    def test_prometheus_golden_output(self):
        registry = MetricsRegistry()
        registry.counter(
            "dmc_rules_emitted_total", "Rules emitted by the scan.",
            scan="partial",
        ).inc(7)
        registry.counter(
            "dmc_rules_emitted_total", "Rules emitted by the scan.",
            scan="100%-rules",
        ).inc(3)
        registry.gauge("dmc_columns_total", "Columns.").set(42)
        registry.histogram(
            "dmc_row_entries", "Entries per row.", buckets=(1, 10)
        ).observe(4)

        expected = "\n".join(
            [
                '# HELP dmc_columns_total Columns.',
                '# TYPE dmc_columns_total gauge',
                'dmc_columns_total 42',
                '# HELP dmc_row_entries Entries per row.',
                '# TYPE dmc_row_entries histogram',
                'dmc_row_entries_bucket{le="1"} 0',
                'dmc_row_entries_bucket{le="10"} 1',
                'dmc_row_entries_bucket{le="+Inf"} 1',
                'dmc_row_entries_sum 4',
                'dmc_row_entries_count 1',
                '# HELP dmc_rules_emitted_total Rules emitted by the scan.',
                '# TYPE dmc_rules_emitted_total counter',
                'dmc_rules_emitted_total{scan="100%-rules"} 3',
                'dmc_rules_emitted_total{scan="partial"} 7',
                '',
            ]
        )
        assert registry.to_prometheus() == expected

    def test_json_export_is_stable_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("dmc_b_total", "B.").inc()
        registry.counter("dmc_a_total", "A.").inc()
        document = registry.to_dict()
        names = [family["name"] for family in document["metrics"]]
        assert names == sorted(names)
        assert json.loads(registry.to_json()) == document


class TestCounterExactness:
    """Engine counters must balance and agree with brute force."""

    @pytest.mark.parametrize("minconf", [1, 0.9, 0.75, 0.5])
    def test_accounting_identity_small_matrix(self, minconf):
        stats_holder = []
        from repro.core.stats import PipelineStats

        stats = PipelineStats()
        rules = find_implication_rules(SMALL, minconf, stats=stats)
        stats_holder.append(stats)
        for scan in (stats.hundred_percent_scan, stats.partial_scan):
            assert scan.accounting_balanced(), vars(scan)
            assert scan.candidates_deleted == (
                scan.candidates_deleted_budget
                + scan.candidates_deleted_dynamic
            )
        emitted = (
            stats.hundred_percent_scan.rules_emitted
            + stats.partial_scan.rules_emitted
        )
        # The <100% scan may re-emit rules the RuleSet dedupes.
        assert emitted >= len(rules)
        assert rules.pairs() == implication_rules_bruteforce(
            SMALL, minconf
        ).pairs()

    def test_accounting_survives_the_bitmap_switch(self):
        from repro.core.stats import PipelineStats

        options = PruningOptions(
            bitmap=BitmapConfig(switch_rows=10_000, memory_budget_bytes=1)
        )
        stats = PipelineStats()
        rules = find_implication_rules(
            SMALL, 0.75, options=options, stats=stats
        )
        assert stats.partial_scan.bitmap_switch_at is not None
        for scan in (stats.hundred_percent_scan, stats.partial_scan):
            assert scan.accounting_balanced(), vars(scan)
        assert rules.pairs() == implication_rules_bruteforce(
            SMALL, 0.75
        ).pairs()

    def test_metrics_match_stats_exactly(self):
        from repro.core.stats import PipelineStats

        observer = RunObserver()
        stats = PipelineStats()
        find_implication_rules(SMALL, 0.75, stats=stats, observer=observer)
        observer.finish(stats=stats)
        registry = observer.metrics
        for scan_label, scan in (
            ("100%-rules", stats.hundred_percent_scan),
            ("partial", stats.partial_scan),
        ):
            assert registry.value(
                "dmc_candidates_added_total", scan=scan_label
            ) == scan.candidates_added
            assert registry.value(
                "dmc_candidates_deleted_total",
                scan=scan_label, cause="budget",
            ) == scan.candidates_deleted_budget
            assert registry.value(
                "dmc_candidates_deleted_total",
                scan=scan_label, cause="dynamic",
            ) == scan.candidates_deleted_dynamic
            assert registry.value(
                "dmc_rules_emitted_total", scan=scan_label
            ) == scan.rules_emitted
        assert registry.value("dmc_columns_total") == SMALL.n_columns


class TestObservers:
    def test_null_observer_is_disabled(self):
        assert NULL_OBSERVER.enabled is False
        assert isinstance(NULL_OBSERVER, NullObserver)
        with NULL_OBSERVER.phase("anything"):
            pass
        with NULL_OBSERVER.span("anything", attr=1):
            pass
        NULL_OBSERVER.finish()

    def test_null_observer_leaves_rules_byte_identical(self):
        plain = find_implication_rules(SMALL, 0.75)
        with_null = find_implication_rules(
            SMALL, 0.75, observer=NullObserver()
        )
        with_run = find_implication_rules(
            SMALL, 0.75, observer=RunObserver()
        )
        assert (
            rules_to_json(plain)
            == rules_to_json(with_null)
            == rules_to_json(with_run)
        )

    def test_run_observer_records_phase_spans(self):
        observer = RunObserver()
        find_implication_rules(SMALL, 0.75, observer=observer)
        names = [span.name for span in observer.tracer.spans]
        assert names == ["pre-scan", "100%-rules", "<100%-rules"]
        assert observer.tracer.depth == 0

    def test_run_observer_nests_the_bitmap_tail(self):
        observer = RunObserver()
        options = PruningOptions(
            bitmap=BitmapConfig(switch_rows=10_000, memory_budget_bytes=1)
        )
        find_implication_rules(
            SMALL, 0.75, options=options, observer=observer
        )
        by_name = {span.name: span for span in observer.tracer.spans}
        tail_parents = [
            span
            for span in by_name.values()
            for child in span.children
            if child.name == "bitmap-tail"
        ]
        assert tail_parents, "no phase recorded a bitmap-tail child span"
        tail = [
            child
            for span in tail_parents
            for child in span.children
            if child.name == "bitmap-tail"
        ][0]
        assert {c.name for c in tail.children} == {
            "bitmap-phase1", "bitmap-phase2",
        }
        assert tail.attributes["rows_remaining"] > 0

    def test_console_progress_reports(self, capsys):
        import sys

        observer = ConsoleProgress(stream=sys.stderr, every=1)
        find_implication_rules(SMALL, 0.75, observer=observer)
        err = capsys.readouterr().err
        assert "phase pre-scan" in err
        assert "row " in err

    def test_console_progress_rejects_bad_every(self):
        with pytest.raises(ValueError):
            ConsoleProgress(every=0)

    def test_progress_observer_base_hooks_are_noops(self):
        observer = ProgressObserver()
        observer.on_row(0, 10, 1, 8, "scan")
        observer.on_bitmap_switch(1, "scan")
        observer.on_guard_trip(2, "scan")
        observer.on_bucket("bucket-00.txt", 4)
        observer.on_retry("spill.open")
        observer.observe_memory(100)
        observer.finish()

    def test_candidates_alive_band_gauges(self):
        observer = RunObserver(bands=4)
        find_implication_rules(SMALL, 0.75, observer=observer)
        band_values = [
            observer.metrics.value(
                "dmc_candidates_alive_band", scan="<100%-rules",
                band=str(band),
            )
            for band in range(4)
        ]
        assert any(value is not None for value in band_values)


class TestExporters:
    def test_metrics_format_resolution(self):
        assert metrics_format_for("run.json") == "json"
        assert metrics_format_for("run.prom") == "prometheus"
        assert metrics_format_for("run.txt") == "prometheus"
        assert metrics_format_for("run.json", fmt="prometheus") == (
            "prometheus"
        )
        with pytest.raises(ValueError):
            metrics_format_for("x", fmt="xml")

    def test_write_and_load_round_trip(self, tmp_path):
        observer = RunObserver()
        find_implication_rules(SMALL, 0.75, observer=observer)
        observer.finish()

        metrics_path = str(tmp_path / "metrics.json")
        assert write_metrics(observer.metrics, metrics_path) == "json"
        loaded = load_metrics(metrics_path)
        assert loaded == observer.metrics.to_dict()

        prom_path = str(tmp_path / "metrics.prom")
        assert write_metrics(observer.metrics, prom_path) == "prometheus"
        with open(prom_path, encoding="utf-8") as handle:
            assert handle.read() == observer.metrics.to_prometheus()

        trace_path = str(tmp_path / "trace.json")
        write_trace(observer.tracer, trace_path)
        assert load_trace(trace_path) == observer.tracer.to_dict()


class TestStreamingObservation:
    def test_stream_pipeline_reports_buckets_and_phases(self):
        from repro.matrix.stream import (
            MatrixSource,
            stream_implication_rules,
        )

        matrix = load_dataset("News", scale=0.1, seed=3)
        observer = RunObserver()
        rules = stream_implication_rules(
            MatrixSource(matrix), 0.9, observer=observer
        )
        baseline = find_implication_rules(matrix, 0.9)
        assert rules.pairs() == baseline.pairs()
        names = [span.name for span in observer.tracer.spans]
        assert names == ["pre-scan", "100%-rules", "<100%-rules"]
        replayed = observer.metrics.value("dmc_buckets_replayed_total")
        assert replayed is not None and replayed > 0

    def test_memory_budget_fallback_is_observed(self):
        from repro.core.stats import PipelineStats
        from repro.runtime.guards import mine_with_memory_budget

        matrix = load_dataset("News", scale=0.1, seed=3)
        observer = RunObserver()
        stats = PipelineStats()
        rules, engine = mine_with_memory_budget(
            matrix, 0.9, budget_bytes=64, n_partitions=2,
            stats=stats, observer=observer,
        )
        assert engine == "partitioned"
        baseline = find_implication_rules(matrix, 0.9)
        assert rules.pairs() == baseline.pairs()
        names = [span.name for span in observer.tracer.spans]
        assert "dmc-attempt" in names
        assert "partitioned-fallback" in names
        fallback = next(
            span
            for span in observer.tracer.spans
            if span.name == "partitioned-fallback"
        )
        assert fallback.attributes["budget_exceeded"] is True
        assert stats.partition_candidates
