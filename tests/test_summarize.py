"""Rule-set summaries (repro.mining.summarize)."""

from fractions import Fraction

from repro.core.rules import ImplicationRule, RuleSet, SimilarityRule
from repro.matrix.binary_matrix import Vocabulary
from repro.mining.summarize import summarize_rules


def _rules():
    return RuleSet(
        [
            ImplicationRule(0, 1, hits=10, ones=10),  # 1.0
            ImplicationRule(0, 2, hits=19, ones=20),  # 0.95
            ImplicationRule(3, 1, hits=9, ones=10),   # 0.9
            ImplicationRule(4, 1, hits=3, ones=4),    # 0.75
            ImplicationRule(5, 0, hits=1, ones=2),    # 0.5
        ]
    )


class TestSummarizeImplication:
    def test_counts(self):
        summary = summarize_rules(_rules())
        assert summary.n_rules == 5
        assert summary.n_exact == 1

    def test_band_histogram(self):
        summary = summarize_rules(_rules())
        assert summary.band_counts["= 1"] == 1
        assert summary.band_counts[">= 0.95"] == 1
        assert summary.band_counts[">= 0.90"] == 1
        assert summary.band_counts[">= 0.70"] == 1
        assert summary.band_counts["< 0.70"] == 1

    def test_band_total_matches_rule_count(self):
        summary = summarize_rules(_rules())
        assert sum(summary.band_counts.values()) == summary.n_rules

    def test_strength_range(self):
        summary = summarize_rules(_rules())
        assert summary.strength_min == Fraction(1, 2)
        assert summary.strength_max == 1

    def test_hubs(self):
        summary = summarize_rules(_rules())
        assert summary.top_antecedents[0] == (0, 2)
        assert summary.top_consequents[0] == (1, 3)

    def test_render_with_labels(self):
        vocabulary = Vocabulary(["a", "b", "c", "d", "e", "f"])
        text = summarize_rules(_rules(), vocabulary).render()
        assert "5 rules" in text
        assert "a (2)" in text   # top antecedent by label
        assert "b (3)" in text   # top consequent by label

    def test_empty_rule_set(self):
        summary = summarize_rules(RuleSet())
        assert summary.n_rules == 0
        assert summary.strength_min is None
        assert "0 rules" in summary.render()


class TestSummarizeSimilarity:
    def test_pairs_count_both_sides(self):
        rules = RuleSet(
            [
                SimilarityRule(0, 1, intersection=4, union=4),
                SimilarityRule(1, 2, intersection=3, union=4),
            ]
        )
        summary = summarize_rules(rules)
        assert summary.n_exact == 1
        # Column 1 appears in both pairs.
        assert summary.top_antecedents[0] == (1, 2)
        assert summary.top_consequents == []


class TestCliSummary:
    def test_mine_imp_summary(self, capsys, tmp_path):
        from repro.cli import main
        from repro.matrix.binary_matrix import BinaryMatrix
        from repro.matrix.io import save_transactions

        matrix = BinaryMatrix.from_transactions(
            [["a", "b"], ["a", "b"], ["b", "c"]]
        )
        path = str(tmp_path / "d.txt")
        save_transactions(matrix, path)
        assert main(["mine-imp", path, "--minconf", "0.5",
                     "--summary"]) == 0
        out = capsys.readouterr().out
        assert "summary of" in out
        assert "rules" in out

    def test_mine_topk(self, capsys, tmp_path):
        from repro.cli import main
        from repro.matrix.binary_matrix import BinaryMatrix
        from repro.matrix.io import save_transactions

        matrix = BinaryMatrix.from_transactions(
            [["a", "b"], ["a", "b"], ["b"]]
        )
        path = str(tmp_path / "d.txt")
        save_transactions(matrix, path)
        assert main(["mine-topk", path, "-k", "1"]) == 0
        assert "strongest rules" in capsys.readouterr().out
