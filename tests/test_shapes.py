"""The reproduction scorecard (repro.experiments.shapes).

The full scorecard at default scale is the repository's acceptance
test: every qualitative claim from the paper must reproduce.
"""

import pytest

from repro.experiments.shapes import (
    ALL_CHECKS,
    ShapeCheck,
    render_scorecard,
    run_all_checks,
)


class TestScorecardInfrastructure:
    def test_render_scorecard_format(self):
        checks = [
            ShapeCheck("a", "first claim", True, "ok"),
            ShapeCheck("b", "second claim", False, "nope"),
        ]
        text = render_scorecard(checks)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text
        assert "1/2 claims reproduced" in text

    def test_all_checks_have_unique_ids(self):
        ids = [check(scale=0.25).claim_id for check in ALL_CHECKS[:2]]
        assert len(ids) == len(set(ids))


class TestFullScorecardAtDefaultScale:
    """The headline acceptance test: 10/10 at scale 1.0."""

    @pytest.fixture(scope="class")
    def checks(self):
        return run_all_checks(scale=1.0, seed=0)

    def test_all_claims_reproduce(self, checks):
        failed = [check for check in checks if not check.passed]
        assert not failed, render_scorecard(checks)

    def test_scorecard_covers_every_figure_family(self, checks):
        ids = {check.claim_id for check in checks}
        assert {
            "fig3-reorder",
            "fig4-lowfreq",
            "fig6ab-monotone",
            "fig6cd-partial",
            "fig6ef-jump",
            "fig6gh-memory",
            "fig6ij-dmcwins",
            "fig7-families",
            "abl-reorder-x",
            "abl-prune-safe",
        } == ids

    def test_details_are_informative(self, checks):
        assert all(check.detail for check in checks)


class TestCheckCommand:
    def test_cli_check_small_scale_runs(self, capsys):
        from repro.cli import main

        # Small scale may legitimately fail scale-sensitive claims;
        # the command must still render the full scorecard.
        code = main(["check", "--scale", "0.3"])
        out = capsys.readouterr().out
        assert "reproduction scorecard" in out
        assert code in (0, 1)
