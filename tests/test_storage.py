"""The durable storage layer: write discipline, errno ladder, degradation.

Three layers of coverage:

1. The :class:`~repro.runtime.storage.Storage` primitives and the
   atomic-write discipline (temp file cleanup, durable vs non-durable).
2. The :class:`~repro.runtime.storage.FaultyStorage` test double itself
   (op counting, crash-forever, errno fault scheduling) and the errno
   classification consumed by ``retry_io``.
3. End-to-end degradation: an injected ``ENOSPC`` at any spill,
   checkpoint or ledger write still completes the mine with the exact
   rule set, records the ladder step in ``stats.degradations`` and in
   the ``dmc_degradations_total`` metric.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.core.dmc_imp import find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.partitioned import find_implication_rules_partitioned
from repro.core.stats import PipelineStats
from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.io import save_transactions
from repro.matrix.stream import (
    FileSource,
    stream_implication_rules,
    stream_similarity_rules,
)
from repro.observe.run import RunObserver
from repro.runtime.faults import SimulatedCrash
from repro.runtime.guards import (
    ensure_disk_space,
    estimate_spill_bytes,
    retry_io,
)
from repro.runtime.storage import (
    LOCAL_STORAGE,
    TERMINAL_ERRNOS,
    FaultyStorage,
    LocalStorage,
    StorageFault,
    StorageFull,
    io_error_kind,
    terminal_io_error,
)

from tests.test_runtime import DEMO_ROWS

STREAMERS = {
    "implication": (stream_implication_rules, find_implication_rules, 0.8),
    "similarity": (stream_similarity_rules, find_similarity_rules, 0.6),
}


@pytest.fixture
def demo_matrix() -> BinaryMatrix:
    return BinaryMatrix(DEMO_ROWS, n_columns=8)


@pytest.fixture
def demo_path(tmp_path, demo_matrix) -> str:
    path = str(tmp_path / "demo.txt")
    save_transactions(demo_matrix, path)
    return path


# ----------------------------------------------------------------------
# Layer 1: Storage primitives and the atomic-write discipline.
# ----------------------------------------------------------------------


def test_atomic_write_text_round_trips(tmp_path):
    path = str(tmp_path / "state.json")
    LOCAL_STORAGE.atomic_write_text(path, '{"n": 1}')
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == '{"n": 1}'
    # The temp file is gone after a successful write.
    assert not os.path.exists(path + ".tmp")


def test_atomic_write_text_replaces_previous_content(tmp_path):
    path = str(tmp_path / "state.json")
    LOCAL_STORAGE.atomic_write_text(path, "old")
    LOCAL_STORAGE.atomic_write_text(path, "new")
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "new"


def test_atomic_write_text_cleans_temp_file_on_failure(tmp_path):
    path = str(tmp_path / "state.json")
    LOCAL_STORAGE.atomic_write_text(path, "survivor")
    storage = FaultyStorage(faults=(StorageFault(op="fsync"),))
    with pytest.raises(OSError):
        storage.atomic_write_text(path, "doomed")
    # The old file is intact; the temp file was cleaned up.
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "survivor"
    assert not os.path.exists(path + ".tmp")


def test_atomic_write_schedule_is_the_full_discipline(tmp_path):
    """open temp → fsync temp → replace → fsync parent dir, in order."""
    storage = FaultyStorage()
    path = str(tmp_path / "state.json")
    storage.atomic_write_text(path, "x")
    assert [op for op, _ in storage.op_log] == [
        "open-write", "fsync", "replace", "fsync-dir",
    ]
    assert storage.op_log[0][1] == path + ".tmp"
    assert storage.op_log[2][1] == path


def test_non_durable_storage_still_writes_atomically(tmp_path):
    storage = LocalStorage(durable=False)
    path = str(tmp_path / "state.json")
    storage.atomic_write_text(path, "content")
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "content"
    assert "durable=False" in repr(storage)


def test_remove_missing_ok(tmp_path):
    missing = str(tmp_path / "never-existed")
    LOCAL_STORAGE.remove(missing)  # fine by default
    with pytest.raises(FileNotFoundError):
        LOCAL_STORAGE.remove(missing, missing_ok=False)


def test_sha256_matches_hashlib(tmp_path):
    import hashlib

    path = str(tmp_path / "blob")
    with open(path, "wb") as handle:
        handle.write(b"dmc" * 1000)
    assert (
        LOCAL_STORAGE.sha256_file(path)
        == hashlib.sha256(b"dmc" * 1000).hexdigest()
    )


def test_fsync_dir_tolerates_unopenable_directory():
    # A nonexistent directory must not raise: the rename is still atomic.
    LOCAL_STORAGE.fsync_dir("/nonexistent/surely/not-here")


# ----------------------------------------------------------------------
# Layer 2: the FaultyStorage double and errno classification.
# ----------------------------------------------------------------------


def test_faulty_storage_counts_operations(tmp_path):
    storage = FaultyStorage()
    path = str(tmp_path / "f.txt")
    handle = storage.open(path, "w", encoding="utf-8")
    handle.write("row\n")
    storage.fsync(handle)
    handle.close()
    storage.remove(path)
    assert storage.op_count == 3
    assert [op for op, _ in storage.op_log] == [
        "open-write", "fsync", "remove",
    ]
    # Metadata reads are never counted.
    storage.exists(path)
    storage.disk_usage(str(tmp_path))
    assert storage.op_count == 3


def test_faulty_storage_crashes_forever(tmp_path):
    storage = FaultyStorage(crash_at=2)
    storage.makedirs(str(tmp_path / "d"))  # op 1: fine
    with pytest.raises(SimulatedCrash):
        storage.makedirs(str(tmp_path / "e"))  # op 2: crash
    # The dead process never touches the disk again — not even cleanup.
    with pytest.raises(SimulatedCrash):
        storage.remove(str(tmp_path / "anything"))
    assert storage.crashed
    assert not os.path.exists(str(tmp_path / "e"))


def test_faulty_storage_crash_at_validation():
    with pytest.raises(ValueError):
        FaultyStorage(crash_at=0)


def test_storage_fault_matches_op_path_and_window(tmp_path):
    fault = StorageFault(
        op="open-write", path_contains="bucket", first=2, count=1
    )
    storage = FaultyStorage(faults=(fault,))
    other = str(tmp_path / "other.txt")
    bucket = str(tmp_path / "bucket-0.txt")
    storage.open(other, "w").close()  # op mismatch irrelevant: open-write but no "bucket"
    storage.open(bucket, "w").close()  # first match: below the window
    with pytest.raises(OSError) as excinfo:
        storage.open(bucket, "w")  # second match: fails
    assert excinfo.value.errno == errno.ENOSPC
    storage.open(bucket, "w").close()  # window exhausted: fine again
    assert storage.errors_raised == {"ENOSPC": 1}


def test_storage_fault_count_none_fails_forever(tmp_path):
    storage = FaultyStorage(faults=(StorageFault(op="replace"),))
    src = str(tmp_path / "a")
    with open(src, "w") as handle:
        handle.write("x")
    for _ in range(3):
        with pytest.raises(OSError):
            storage.replace(src, str(tmp_path / "b"))


def test_terminal_errno_classification():
    for code in TERMINAL_ERRNOS:
        assert terminal_io_error(OSError(code, "full"))
    assert terminal_io_error(StorageFull("typed"))
    assert not terminal_io_error(OSError(errno.EIO, "flaky"))
    assert not terminal_io_error(ValueError("not io at all"))


def test_io_error_kind_labels():
    assert io_error_kind(OSError(errno.ENOSPC, "x")) == "ENOSPC"
    assert io_error_kind(OSError(errno.EIO, "x")) == "EIO"
    assert io_error_kind(RuntimeError("x")) == "RuntimeError"


def test_retry_io_retries_eio_then_succeeds():
    calls = {"n": 0}
    retried = []

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError(errno.EIO, "transient")
        return "ok"

    result = retry_io(
        flaky, attempts=5, sleep=lambda _: None, on_retry=retried.append
    )
    assert result == "ok"
    assert calls["n"] == 3
    assert len(retried) == 2


def test_retry_io_enospc_is_terminal_no_retry():
    calls = {"n": 0}
    gave_up = []

    def full():
        calls["n"] += 1
        raise OSError(errno.ENOSPC, "disk full")

    with pytest.raises(StorageFull):
        retry_io(
            full, attempts=5, sleep=lambda _: None, on_giveup=gave_up.append
        )
    # Exactly one attempt: a full disk is not cured by backoff.
    assert calls["n"] == 1
    assert len(gave_up) == 1
    assert gave_up[0].errno == errno.ENOSPC


def test_retry_io_exhaustion_calls_giveup():
    gave_up = []

    def always_flaky():
        raise OSError(errno.EIO, "still flaky")

    with pytest.raises(OSError):
        retry_io(
            always_flaky,
            attempts=2,
            sleep=lambda _: None,
            on_giveup=gave_up.append,
        )
    assert len(gave_up) == 1


# ----------------------------------------------------------------------
# Disk-space preflight.
# ----------------------------------------------------------------------


def test_estimate_spill_bytes_from_file(demo_path):
    estimate = estimate_spill_bytes(source=FileSource(demo_path))
    assert estimate == os.path.getsize(demo_path)


def test_estimate_spill_bytes_from_matrix(demo_matrix):
    assert estimate_spill_bytes(matrix=demo_matrix) == demo_matrix.nnz * 8


def test_estimate_spill_bytes_unknown_source_is_none():
    assert estimate_spill_bytes(source=object()) is None


def test_ensure_disk_space_passes_and_fails(tmp_path):
    free = ensure_disk_space(str(tmp_path), 1)
    assert free > 0
    # None (unknown footprint) passes trivially.
    assert ensure_disk_space(str(tmp_path), None) == free
    # An unreadable filesystem does not block the run.

    class BlindStorage(LocalStorage):
        def disk_usage(self, path):
            raise OSError(errno.EIO, "no statfs here")

    assert ensure_disk_space(str(tmp_path), 1, storage=BlindStorage()) == -1
    with pytest.raises(StorageFull):
        ensure_disk_space(str(tmp_path), free * 10)


def test_ensure_disk_space_walks_to_existing_parent(tmp_path):
    target = str(tmp_path / "not" / "yet" / "created")
    assert ensure_disk_space(target, 1) > 0


def test_preflight_aborts_before_any_bucket_write(tmp_path, demo_path):
    """An impossible preflight degrades before pass 1 writes anything."""
    stats = PipelineStats()
    spill_dir = str(tmp_path / "spill")

    class TinyDisk(FaultyStorage):
        def disk_usage(self, path):
            import collections

            usage = collections.namedtuple("usage", "total used free")
            return usage(total=100, used=100, free=0)

    storage = TinyDisk()
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    with pytest.warns(RuntimeWarning, match="in memory"):
        degraded = stream_implication_rules(
            FileSource(demo_path),
            0.8,
            spill_dir=spill_dir,
            storage=storage,
            preflight=True,
            stats=stats,
        )
    assert degraded == baseline
    assert stats.degradations == ["spill-to-memory"]
    # No bucket was ever opened for writing.
    assert not any(op == "open-write" for op, _ in storage.op_log)
    with pytest.raises(StorageFull):
        stream_implication_rules(
            FileSource(demo_path),
            0.8,
            spill_dir=spill_dir,
            storage=TinyDisk(),
            preflight=True,
            spill_degrade=False,
        )


# ----------------------------------------------------------------------
# Layer 3: end-to-end ENOSPC degradation with exact rules + metrics.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", sorted(STREAMERS))
def test_enospc_on_spill_degrades_to_exact_in_memory_run(
    tmp_path, demo_path, demo_matrix, kind
):
    stream, serial, threshold = STREAMERS[kind]
    expected = serial(demo_matrix, threshold)
    assert len(expected) > 0

    # Fail the 2nd bucket open with ENOSPC, forever (a disk stays full).
    storage = FaultyStorage(
        faults=(StorageFault(op="open-write", path_contains="bucket", first=2),)
    )
    stats = PipelineStats()
    observer = RunObserver()
    with pytest.warns(RuntimeWarning, match="in memory"):
        rules = stream(
            FileSource(demo_path),
            threshold,
            spill_dir=str(tmp_path / "spill"),
            storage=storage,
            stats=stats,
            observer=observer,
        )
    assert rules == expected
    assert stats.degradations == ["spill-to-memory"]
    assert (
        observer.metrics.value(
            "dmc_degradations_total", path="spill-to-memory"
        )
        == 1
    )
    assert observer.metrics.value("dmc_io_errors_total", kind="ENOSPC") >= 1


def test_enospc_on_spill_without_degrade_raises_storage_full(
    tmp_path, demo_path
):
    storage = FaultyStorage(
        faults=(StorageFault(op="open-write", path_contains="bucket"),)
    )
    with pytest.raises(StorageFull):
        stream_implication_rules(
            FileSource(demo_path),
            0.8,
            spill_dir=str(tmp_path / "spill"),
            storage=storage,
            spill_degrade=False,
        )


def test_enospc_on_checkpoint_save_turns_checkpoint_off(
    tmp_path, demo_path
):
    """A full disk at manifest-write time must not kill (or re-run) the
    mine: the buckets are already readable, so pass 2 proceeds and only
    the checkpoint is lost."""
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    storage = FaultyStorage(
        faults=(StorageFault(path_contains="manifest", code=errno.ENOSPC),)
    )
    stats = PipelineStats()
    observer = RunObserver()
    with pytest.warns(RuntimeWarning, match="checkpoint"):
        rules = stream_implication_rules(
            FileSource(demo_path),
            0.8,
            checkpoint_dir=str(tmp_path / "ckpt"),
            storage=storage,
            stats=stats,
            observer=observer,
        )
    assert rules == baseline
    assert "checkpoint-off" in stats.degradations
    assert "spill-to-memory" not in stats.degradations
    assert (
        observer.metrics.value("dmc_degradations_total", path="checkpoint-off")
        == 1
    )


def test_readonly_checkpoint_directory_turns_checkpoint_off(
    tmp_path, demo_path
):
    """EROFS at checkpoint-store setup degrades the same way."""
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    storage = FaultyStorage(
        faults=(
            StorageFault(
                op="makedirs", path_contains="ckpt", code=errno.EROFS
            ),
        )
    )
    stats = PipelineStats()
    with pytest.warns(RuntimeWarning, match="checkpoint"):
        rules = stream_implication_rules(
            FileSource(demo_path),
            0.8,
            checkpoint_dir=str(tmp_path / "ckpt"),
            storage=storage,
            stats=stats,
        )
    assert rules == baseline
    assert stats.degradations == ["checkpoint-off"]


def test_enospc_on_ledger_write_disables_ledger_not_the_run(
    tmp_path, demo_matrix
):
    expected = find_implication_rules(demo_matrix, 0.8)
    storage = FaultyStorage(
        faults=(StorageFault(path_contains="ledger", code=errno.ENOSPC),)
    )
    stats = PipelineStats()
    observer = RunObserver()
    with pytest.warns(RuntimeWarning, match="ledger"):
        rules = find_implication_rules_partitioned(
            demo_matrix,
            0.8,
            n_workers=2,
            ledger_dir=str(tmp_path / "ledger"),
            storage=storage,
            stats=stats,
            observer=observer,
        )
    assert rules == expected
    assert "ledger-off" in stats.degradations
    assert (
        observer.metrics.value("dmc_degradations_total", path="ledger-off")
        == 1
    )


def test_transient_eio_on_spill_is_retried_to_success(
    tmp_path, demo_path
):
    """A single EIO during checkpointed spill finalization is absorbed
    by retry_io — no degradation, exact rules."""
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    storage = FaultyStorage(
        faults=(
            StorageFault(
                op="sha256", code=errno.EIO, first=1, count=1
            ),
        )
    )
    stats = PipelineStats()
    observer = RunObserver()
    rules = stream_implication_rules(
        FileSource(demo_path),
        0.8,
        checkpoint_dir=str(tmp_path / "ckpt"),
        storage=storage,
        stats=stats,
        observer=observer,
    )
    assert rules == baseline
    assert stats.degradations == []
    assert storage.errors_raised == {"EIO": 1}
    assert observer.metrics.value("dmc_io_errors_total", kind="EIO") == 1


def test_degradations_survive_stats_round_trip():
    stats = PipelineStats()
    stats.degradations.extend(["spill-to-memory", "ledger-off"])
    clone = PipelineStats.from_dict(stats.to_dict())
    assert clone.degradations == ["spill-to-memory", "ledger-off"]


def test_mine_facade_threads_storage_and_flags(tmp_path, demo_path):
    import repro

    storage = FaultyStorage(
        faults=(StorageFault(op="open-write", path_contains="bucket"),)
    )
    with pytest.warns(RuntimeWarning):
        result = repro.mine(
            demo_path, minconf=0.8, storage=storage, spill_dir=str(tmp_path)
        )
    baseline = repro.mine(demo_path, minconf=0.8)
    assert result.rules == baseline.rules
    assert result.stats.degradations == ["spill-to-memory"]
    with pytest.raises(StorageFull):
        repro.mine(
            demo_path,
            minconf=0.8,
            storage=FaultyStorage(
                faults=(StorageFault(op="open-write", path_contains="bucket"),)
            ),
            spill_dir=str(tmp_path),
            spill_degrade=False,
        )


# ----------------------------------------------------------------------
# Lease primitives (the distributed transport's fencing layer)
# ----------------------------------------------------------------------


class TestLeasePrimitives:
    def _path(self, tmp_path):
        return str(tmp_path / "lease-t0.json")

    def test_acquire_fresh_then_blocked(self, tmp_path):
        from repro.runtime.storage import LOCAL_STORAGE, acquire_lease

        path = self._path(tmp_path)
        lease = acquire_lease(LOCAL_STORAGE, path, "node-a", ttl=10.0)
        assert lease is not None and lease.token == 1
        assert lease.owner == "node-a"
        # A live lease blocks other owners...
        assert acquire_lease(LOCAL_STORAGE, path, "node-b", ttl=10.0) is None
        # ...but re-acquisition by the same owner bumps the token.
        again = acquire_lease(LOCAL_STORAGE, path, "node-a", ttl=10.0)
        assert again is not None and again.token == 2

    def test_expired_lease_is_claimable_with_token_bump(self, tmp_path):
        from repro.runtime.storage import LOCAL_STORAGE, acquire_lease

        path = self._path(tmp_path)
        acquire_lease(LOCAL_STORAGE, path, "node-a", ttl=10.0, now=1000.0)
        taken = acquire_lease(
            LOCAL_STORAGE, path, "node-b", ttl=10.0, now=1011.0
        )
        assert taken is not None
        assert taken.owner == "node-b"
        assert taken.token == 2  # fences node-a's stale claim

    def test_steal_takes_over_a_live_lease(self, tmp_path):
        from repro.runtime.storage import LOCAL_STORAGE, acquire_lease

        path = self._path(tmp_path)
        acquire_lease(LOCAL_STORAGE, path, "node-a", ttl=60.0)
        stolen = acquire_lease(
            LOCAL_STORAGE, path, "coordinator", ttl=None, steal=True
        )
        assert stolen is not None
        assert stolen.token == 2
        assert stolen.expires_at is None  # never expires; steal-only

    def test_verify_and_renew_fence_out_stale_holders(self, tmp_path):
        from repro.runtime.storage import (
            LOCAL_STORAGE,
            LeaseFenced,
            acquire_lease,
            renew_lease,
            verify_lease,
        )

        path = self._path(tmp_path)
        old = acquire_lease(LOCAL_STORAGE, path, "node-a", ttl=10.0, now=0.0)
        renewed = renew_lease(LOCAL_STORAGE, path, old, 10.0, now=5.0)
        assert renewed.token == old.token  # renewal never bumps
        assert renewed.expires_at == 15.0
        # node-b re-acquires after expiry; node-a's handle is stale.
        acquire_lease(LOCAL_STORAGE, path, "node-b", ttl=10.0, now=20.0)
        with pytest.raises(LeaseFenced):
            verify_lease(LOCAL_STORAGE, path, renewed)
        with pytest.raises(LeaseFenced):
            renew_lease(LOCAL_STORAGE, path, renewed, 10.0, now=21.0)

    def test_release_is_holder_only(self, tmp_path):
        from repro.runtime.storage import (
            LOCAL_STORAGE,
            acquire_lease,
            load_lease,
            release_lease,
        )

        path = self._path(tmp_path)
        stale = acquire_lease(LOCAL_STORAGE, path, "node-a", ttl=10.0, now=0.0)
        current = acquire_lease(
            LOCAL_STORAGE, path, "node-b", ttl=10.0, now=20.0
        )
        # The fenced-out holder's release must not delete the new
        # holder's lease.
        assert release_lease(LOCAL_STORAGE, path, stale) is False
        assert load_lease(LOCAL_STORAGE, path).owner == "node-b"
        assert release_lease(LOCAL_STORAGE, path, current) is True
        assert load_lease(LOCAL_STORAGE, path) is None

    def test_torn_lease_file_reads_as_no_lease(self, tmp_path):
        from repro.runtime.storage import (
            LOCAL_STORAGE,
            acquire_lease,
            load_lease,
        )

        path = self._path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"key": "lease-t0.json", "own')  # torn write
        assert load_lease(LOCAL_STORAGE, path) is None
        # ...and the next acquire simply claims it.
        lease = acquire_lease(LOCAL_STORAGE, path, "node-a", ttl=10.0)
        assert lease is not None and lease.token == 1

    def test_lease_record_round_trip(self):
        from repro.runtime.storage import Lease

        lease = Lease(
            key="k", owner="o", token=3, expires_at=None, acquired_at=1.5
        )
        assert Lease.from_record(lease.to_record()) == lease


class TestExclusiveCommit:
    """First-writer-wins: the primitive duplicate result delivery
    rides on."""

    def test_first_writer_wins_and_content_is_immutable(self, tmp_path):
        from repro.runtime.storage import LOCAL_STORAGE

        target = str(tmp_path / "result.json")
        assert LOCAL_STORAGE.create_exclusive_text(target, "winner") is True
        assert LOCAL_STORAGE.create_exclusive_text(target, "loser") is False
        with open(target, encoding="utf-8") as handle:
            assert handle.read() == "winner"

    def test_loser_leaves_no_temp_droppings(self, tmp_path):
        from repro.runtime.storage import LOCAL_STORAGE

        target = str(tmp_path / "result.json")
        LOCAL_STORAGE.create_exclusive_text(target, "winner")
        LOCAL_STORAGE.create_exclusive_text(target, "loser")
        assert sorted(os.listdir(tmp_path)) == ["result.json"]

    def test_link_never_overwrites(self, tmp_path):
        from repro.runtime.storage import LOCAL_STORAGE

        src_a = str(tmp_path / "a")
        src_b = str(tmp_path / "b")
        dst = str(tmp_path / "dst")
        for path, text in ((src_a, "A"), (src_b, "B")):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        assert LOCAL_STORAGE.link(src_a, dst) is True
        assert LOCAL_STORAGE.link(src_b, dst) is False
        with open(dst, encoding="utf-8") as handle:
            assert handle.read() == "A"
