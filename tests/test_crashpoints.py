"""Crash-point enumeration: exactness at *every* storage operation.

The acceptance property of the durable-storage PR: crash a checkpointed
streaming run — or a supervised shard-ledger run — after its k-th
storage operation, for every k, restart it, and the mined rules must
equal the serial in-memory engine's.  No hand-picked crash windows;
:func:`repro.runtime.crashpoints.enumerate_crash_points` sweeps them
all (ALICE-style).

Also unit-tests the harness itself: op counting, the crash-forever
contract, ``max_points`` striding, swallowed-crash detection, and the
baseline-vs-expected guard.
"""

from __future__ import annotations

import pytest

from repro.core.dmc_imp import find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.partitioned import (
    find_implication_rules_partitioned,
    find_similarity_rules_partitioned,
)
from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.io import save_transactions
from repro.matrix.stream import (
    FileSource,
    stream_implication_rules,
    stream_similarity_rules,
)
from repro.runtime.crashpoints import (
    CrashPointReport,
    CrashPointResult,
    count_storage_ops,
    enumerate_crash_points,
)
from repro.runtime.faults import SimulatedCrash
from repro.runtime.storage import FaultyStorage

from tests.test_runtime import DEMO_ROWS

ENGINES = {
    "implication": (
        stream_implication_rules,
        find_implication_rules,
        find_implication_rules_partitioned,
        0.8,
    ),
    "similarity": (
        stream_similarity_rules,
        find_similarity_rules,
        find_similarity_rules_partitioned,
        0.6,
    ),
}


@pytest.fixture
def demo_matrix() -> BinaryMatrix:
    return BinaryMatrix(DEMO_ROWS, n_columns=8)


@pytest.fixture
def demo_path(tmp_path, demo_matrix) -> str:
    path = str(tmp_path / "demo.txt")
    save_transactions(demo_matrix, path)
    return path


# ----------------------------------------------------------------------
# Harness unit tests (no mining involved).
# ----------------------------------------------------------------------


def _toy_workload(tmp_path):
    """A tiny crash-recoverable workload: an atomically-updated file.

    The 'result' is the file's content if it exists, else 'initial' —
    atomic_write_text guarantees a crash anywhere leaves one of the two
    valid states, and the recovery run (which writes again) always
    converges to 'final'.
    """
    path = str(tmp_path / "state.txt")

    def run(storage):
        storage.makedirs(str(tmp_path / "scratch"))
        storage.atomic_write_text(path, "final")
        with open(path, encoding="utf-8") as handle:
            return handle.read()

    return run


def test_count_storage_ops(tmp_path):
    # makedirs + (open-write, fsync, replace, fsync-dir) = 5 ops.
    assert count_storage_ops(_toy_workload(tmp_path)) == 5


def test_enumerate_crash_points_toy_workload_all_ok(tmp_path):
    report = enumerate_crash_points(_toy_workload(tmp_path))
    assert report.total_ops == 5
    assert len(report.results) == 5
    assert report.failures == []
    assert all(result.crashed for result in report.results)
    assert report.describe_failures() == "all crash points recovered exactly"
    # The schedule names the ops of the clean run.
    assert [op for op, _ in report.schedule] == [
        "makedirs", "open-write", "fsync", "replace", "fsync-dir",
    ]


def test_enumerate_crash_points_max_points_strides(tmp_path):
    report = enumerate_crash_points(_toy_workload(tmp_path), max_points=3)
    indices = [result.op_index for result in report.results]
    assert len(indices) == 3
    assert indices[0] == 1 and indices[-1] == 5  # endpoints always covered
    assert indices == sorted(indices)


def test_enumerate_crash_points_max_points_one(tmp_path):
    report = enumerate_crash_points(_toy_workload(tmp_path), max_points=1)
    assert [result.op_index for result in report.results] == [5]


def test_enumerate_crash_points_detects_swallowed_crash(tmp_path):
    """A workload that eats SimulatedCrash and returns garbage is a
    failure (crashed=False), not a silent pass."""
    path = str(tmp_path / "state.txt")

    def sloppy(storage):
        try:
            storage.atomic_write_text(path, "final")
        except SimulatedCrash:
            pass  # the bug under test: treating a crash as recoverable
        return "wrong"

    # Clean run returns "wrong" consistently, so the baseline matches
    # itself; but every crashed run survives with crashed=False.
    report = enumerate_crash_points(sloppy)
    assert report.total_ops == 4
    assert len(report.failures) == 4
    assert all(not result.crashed for result in report.failures)
    assert "swallowed" in report.describe_failures()


def test_enumerate_crash_points_rejects_wrong_baseline(tmp_path):
    with pytest.raises(ValueError, match="clean run"):
        enumerate_crash_points(
            _toy_workload(tmp_path), expected="something else"
        )


def test_enumerate_crash_points_detects_bad_recovery(tmp_path):
    """A recovery path that loses data shows up as recovered_equal=False."""
    run = _toy_workload(tmp_path)

    def amnesiac_recovery(storage):
        return "initial"  # pretends nothing was ever written

    report = enumerate_crash_points(run, recover=amnesiac_recovery)
    assert len(report.failures) == report.total_ops
    assert all(result.crashed for result in report.failures)
    assert "different" in report.describe_failures()


def test_crash_point_result_ok_property():
    good = CrashPointResult(1, "replace", "x", crashed=True, recovered_equal=True)
    assert good.ok
    assert not CrashPointResult(1, "", "x", True, False).ok
    assert not CrashPointResult(1, "", "x", False, True).ok


def test_empty_schedule_report():
    report = enumerate_crash_points(lambda storage: 42)
    assert report.total_ops == 0
    assert report.results == []
    assert report.failures == []


def test_faulty_storage_schedule_is_deterministic(tmp_path):
    run = _toy_workload(tmp_path)
    first = FaultyStorage()
    run(first)
    second = FaultyStorage()
    run(second)
    assert first.op_log == second.op_log


# ----------------------------------------------------------------------
# The acceptance sweeps: streaming checkpoint and supervisor ledger.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", sorted(ENGINES))
def test_streaming_checkpoint_survives_every_crash_point(
    tmp_path, demo_path, demo_matrix, kind
):
    """Crash a checkpointed streaming run at every storage operation;
    a restart must always mine the serial engine's exact rules."""
    stream, serial, _, threshold = ENGINES[kind]
    expected = sorted(serial(demo_matrix, threshold))
    checkpoint_dir = str(tmp_path / "ckpt")

    def run(storage):
        return sorted(
            stream(
                FileSource(demo_path),
                threshold,
                checkpoint_dir=checkpoint_dir,
                storage=storage,
            )
        )

    report = enumerate_crash_points(run, expected=expected)
    assert report.total_ops > 10  # the sweep actually covers something
    assert report.failures == [], report.describe_failures()


@pytest.mark.parametrize("kind", sorted(ENGINES))
def test_supervisor_ledger_survives_every_crash_point(
    tmp_path, demo_matrix, kind
):
    """Crash a supervised partitioned run at every ledger storage
    operation; a restart must resume to the exact serial rules."""
    _, serial, partitioned, threshold = ENGINES[kind]
    expected = sorted(serial(demo_matrix, threshold))
    ledger_dir = str(tmp_path / "ledger")

    def run(storage):
        return sorted(
            partitioned(
                demo_matrix,
                threshold,
                n_partitions=3,
                n_workers=2,
                ledger_dir=ledger_dir,
                storage=storage,
            )
        )

    report = enumerate_crash_points(run, expected=expected)
    assert report.total_ops > 5
    assert report.failures == [], report.describe_failures()


def test_streaming_crash_sweep_with_spill_dir_only(tmp_path, demo_path):
    """No checkpoint at all: recovery is simply a rerun, and it must
    still be exact at every crash point (spill files are scratch)."""
    spill_dir = str(tmp_path / "spill")

    def run(storage):
        return sorted(
            stream_implication_rules(
                FileSource(demo_path),
                0.8,
                spill_dir=spill_dir,
                storage=storage,
            )
        )

    report = enumerate_crash_points(run)
    assert report.total_ops > 0
    assert report.failures == [], report.describe_failures()


def test_bounded_sweep_matches_full_sweep_verdict(tmp_path, demo_path):
    """The CI-bounded sweep exercises a subset of the same schedule."""
    checkpoint_dir = str(tmp_path / "ckpt")

    def run(storage):
        return sorted(
            stream_implication_rules(
                FileSource(demo_path),
                0.8,
                checkpoint_dir=checkpoint_dir,
                storage=storage,
            )
        )

    report = enumerate_crash_points(run, max_points=5)
    assert len(report.results) == 5
    assert report.failures == [], report.describe_failures()
