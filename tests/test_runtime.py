"""Fault tolerance: checkpoints, resume, guards, retries, fault injection.

The headline property (ISSUE acceptance): a streaming run killed
mid-pass-2 resumes from its checkpoint and produces a RuleSet exactly
equal to the uninterrupted run's — for both pipelines — without
re-reading the source.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.dmc_imp import PruningOptions, find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.stats import PipelineStats
from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.io import save_transactions
from repro.matrix.stream import (
    BucketSpill,
    FileSource,
    IterableSource,
    SourceNotReiterableError,
    stream_implication_rules,
    stream_similarity_rules,
)
from repro.runtime import faults
from repro.runtime.checkpoint import (
    CheckpointCorrupted,
    CheckpointStale,
    CheckpointStore,
    source_fingerprint,
)
from repro.runtime.faults import Fault, FaultPlan, SimulatedCrash
from repro.runtime.guards import (
    MemoryBudgetExceeded,
    MemoryGuard,
    mine_with_memory_budget,
    retry_io,
)

from tests.conftest import random_binary_matrix

# ----------------------------------------------------------------------
# Fixtures: a deterministic matrix with non-trivial rules, on disk.
# ----------------------------------------------------------------------

# Column 7 duplicates column 0, guaranteeing 100%-similar pairs; the
# modular pattern supplies plenty of partial-confidence structure.
DEMO_ROWS = tuple(
    tuple(
        sorted(
            {i % 7, (i * 3) % 7, (i * i) % 7}
            | ({7} if i % 7 == 0 else set())
        )
    )
    for i in range(18)
)

STREAMERS = {
    "implication": (stream_implication_rules, 0.8),
    "similarity": (stream_similarity_rules, 0.6),
}


@pytest.fixture
def demo_matrix() -> BinaryMatrix:
    return BinaryMatrix(DEMO_ROWS, n_columns=8)


@pytest.fixture
def demo_path(tmp_path, demo_matrix) -> str:
    path = str(tmp_path / "demo.txt")
    save_transactions(demo_matrix, path)
    return path


class CountingFileSource(FileSource):
    """A FileSource that counts how often the file is iterated."""

    def __init__(self, path, **kwargs):
        super().__init__(path, **kwargs)
        self.iterations = 0

    def iter_rows(self):
        self.iterations += 1
        return super().iter_rows()


# ----------------------------------------------------------------------
# The headline acceptance test: crash mid-pass-2, resume, equal rules.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", sorted(STREAMERS))
def test_crash_mid_pass2_resumes_to_identical_rules(
    tmp_path, demo_path, kind
):
    stream, threshold = STREAMERS[kind]
    baseline = stream(FileSource(demo_path), threshold)
    assert len(baseline) > 0

    checkpoint_dir = str(tmp_path / "ckpt")
    plan = FaultPlan([Fault("pass2.row", first=5, error=SimulatedCrash)])
    with faults.install(plan):
        with pytest.raises(SimulatedCrash):
            stream(
                FileSource(demo_path),
                threshold,
                checkpoint_dir=checkpoint_dir,
            )
    assert plan.fired.get("pass2.row") == 1
    assert CheckpointStore(checkpoint_dir).has_checkpoint()

    resumed_source = CountingFileSource(demo_path)
    resumed = stream(
        resumed_source, threshold, checkpoint_dir=checkpoint_dir
    )
    assert resumed == baseline
    # Pass 1 was genuinely skipped: the source was never re-read.
    assert resumed_source.iterations == 0
    # A completed run retires its checkpoint.
    assert not CheckpointStore(checkpoint_dir).has_checkpoint()


@pytest.mark.parametrize("kind", sorted(STREAMERS))
def test_crash_mid_pass1_leaves_no_checkpoint(tmp_path, demo_path, kind):
    stream, threshold = STREAMERS[kind]
    baseline = stream(FileSource(demo_path), threshold)

    checkpoint_dir = str(tmp_path / "ckpt")
    plan = FaultPlan([Fault("pass1.row", first=3, error=SimulatedCrash)])
    with faults.install(plan):
        with pytest.raises(SimulatedCrash):
            stream(
                FileSource(demo_path),
                threshold,
                checkpoint_dir=checkpoint_dir,
            )
    store = CheckpointStore(checkpoint_dir)
    assert not store.has_checkpoint()

    # The next run rescans from scratch and still gets the right answer.
    source = CountingFileSource(demo_path)
    assert stream(source, threshold, checkpoint_dir=checkpoint_dir) == baseline
    assert source.iterations == 1


@pytest.mark.slow
@pytest.mark.parametrize("kind", sorted(STREAMERS))
def test_crash_at_every_pass2_row_resumes_exactly(tmp_path, kind):
    """Sweep the crash position across the whole second pass."""
    stream, threshold = STREAMERS[kind]
    matrix = random_binary_matrix(seed=2024, max_rows=30, max_columns=10)
    path = str(tmp_path / "sweep.txt")
    save_transactions(matrix, path)
    baseline = stream(FileSource(path), threshold)

    nonempty = sum(1 for _, row in matrix.iter_rows() if row)
    checkpoint_dir = str(tmp_path / "ckpt")
    for position in range(1, 2 * nonempty + 2, 3):
        plan = FaultPlan(
            [Fault("pass2.row", first=position, error=SimulatedCrash)]
        )
        with faults.install(plan):
            try:
                crashed = stream(
                    FileSource(path),
                    threshold,
                    checkpoint_dir=checkpoint_dir,
                )
            except SimulatedCrash:
                crashed = None
        if crashed is not None:
            # Both passes replay fewer rows than this position; the run
            # completed untouched.
            assert crashed == baseline
            continue
        resumed = stream(
            FileSource(path), threshold, checkpoint_dir=checkpoint_dir
        )
        assert resumed == baseline, f"mismatch after crash at {position}"


# ----------------------------------------------------------------------
# Checkpoint store: roundtrip, staleness, corruption.
# ----------------------------------------------------------------------


def _checkpointed_run(demo_path, checkpoint_dir, threshold=0.8):
    """Run pass 1 with a checkpoint and crash immediately in pass 2."""
    plan = FaultPlan([Fault("pass2.row", first=1, error=SimulatedCrash)])
    with faults.install(plan):
        with pytest.raises(SimulatedCrash):
            stream_implication_rules(
                FileSource(demo_path),
                threshold,
                checkpoint_dir=checkpoint_dir,
            )


def test_checkpoint_roundtrip(tmp_path, demo_path, demo_matrix):
    checkpoint_dir = str(tmp_path / "ckpt")
    _checkpointed_run(demo_path, checkpoint_dir)

    store = CheckpointStore(checkpoint_dir)
    source = FileSource(demo_path)
    fingerprint = source_fingerprint(source)
    params = {"kind": "implication", "threshold": "4/5"}
    checkpoint = store.load_pass1(fingerprint, params)
    assert checkpoint is not None
    assert checkpoint.ones == list(demo_matrix.column_ones())
    assert checkpoint.rows_spilled == demo_matrix.n_rows
    assert sum(bucket.rows for bucket in checkpoint.buckets) == (
        demo_matrix.n_rows
    )
    for bucket in checkpoint.buckets:
        path = os.path.join(store.buckets_directory, bucket.name)
        assert os.path.getsize(path) == bucket.size_bytes


def test_load_pass1_returns_none_when_absent(tmp_path):
    store = CheckpointStore(str(tmp_path / "empty"))
    assert store.load_pass1({"kind": "file"}, {}) is None
    assert not store.has_checkpoint()


def test_checkpoint_stale_on_changed_params_and_source(
    tmp_path, demo_path, demo_matrix
):
    checkpoint_dir = str(tmp_path / "ckpt")
    _checkpointed_run(demo_path, checkpoint_dir)
    store = CheckpointStore(checkpoint_dir)
    fingerprint = source_fingerprint(FileSource(demo_path))
    good = {"kind": "implication", "threshold": "4/5"}

    with pytest.raises(CheckpointStale):
        store.load_pass1(
            fingerprint, {"kind": "implication", "threshold": "9/10"}
        )
    with pytest.raises(CheckpointStale):
        store.load_pass1(dict(fingerprint, size=1), good)

    # Rewriting the source changes its mtime/size fingerprint.
    save_transactions(demo_matrix, demo_path)
    with open(demo_path, "a", encoding="utf-8") as handle:
        handle.write("0 1\n")
    with pytest.raises(CheckpointStale):
        store.load_pass1(source_fingerprint(FileSource(demo_path)), good)


def test_checkpoint_stale_on_version_bump(tmp_path, demo_path):
    checkpoint_dir = str(tmp_path / "ckpt")
    _checkpointed_run(demo_path, checkpoint_dir)
    store = CheckpointStore(checkpoint_dir)
    with open(store.manifest_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["version"] = 999
    with open(store.manifest_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    with pytest.raises(CheckpointStale):
        store.load_pass1(
            source_fingerprint(FileSource(demo_path)),
            {"kind": "implication", "threshold": "4/5"},
        )


def test_checkpoint_corrupted_manifest_and_buckets(tmp_path, demo_path):
    checkpoint_dir = str(tmp_path / "ckpt")
    _checkpointed_run(demo_path, checkpoint_dir)
    store = CheckpointStore(checkpoint_dir)
    fingerprint = source_fingerprint(FileSource(demo_path))
    params = {"kind": "implication", "threshold": "4/5"}

    checkpoint = store.load_pass1(fingerprint, params)
    bucket = next(b for b in checkpoint.buckets if b.rows)
    bucket_path = os.path.join(store.buckets_directory, bucket.name)

    # Truncated bucket -> size mismatch.
    original = open(bucket_path, "rb").read()
    with open(bucket_path, "wb") as handle:
        handle.write(original[:-2])
    with pytest.raises(CheckpointCorrupted):
        store.load_pass1(fingerprint, params)

    # Same size, different bytes -> checksum mismatch.
    with open(bucket_path, "wb") as handle:
        handle.write(b"9" * len(original))
    with pytest.raises(CheckpointCorrupted):
        store.load_pass1(fingerprint, params)

    # Missing bucket.
    os.remove(bucket_path)
    with pytest.raises(CheckpointCorrupted):
        store.load_pass1(fingerprint, params)

    # Garbage manifest.
    with open(store.manifest_path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    with pytest.raises(CheckpointCorrupted):
        store.load_pass1(fingerprint, params)


def test_pipeline_discards_bad_checkpoint_and_rescans(tmp_path, demo_path):
    """A stale/corrupt checkpoint must trigger a silent full rescan."""
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    checkpoint_dir = str(tmp_path / "ckpt")
    _checkpointed_run(demo_path, checkpoint_dir)
    store = CheckpointStore(checkpoint_dir)
    with open(store.manifest_path, "w", encoding="utf-8") as handle:
        handle.write("{not json")

    source = CountingFileSource(demo_path)
    rules = stream_implication_rules(
        source, 0.8, checkpoint_dir=checkpoint_dir
    )
    assert rules == baseline
    assert source.iterations == 1  # full rescan, not resume


def test_torn_manifest_at_every_byte_boundary(tmp_path, demo_path):
    """A manifest cut at *any* byte boundary is never trusted.

    A crash mid-write (on a filesystem without atomic rename, or a
    partial page flush) can leave any prefix of the manifest on disk.
    Every prefix must read back as "no checkpoint" or a typed
    :class:`CheckpointError` — never a parse crash, and never a bogus
    resume.
    """
    checkpoint_dir = str(tmp_path / "ckpt")
    _checkpointed_run(demo_path, checkpoint_dir)
    store = CheckpointStore(checkpoint_dir)
    with open(store.manifest_path, "rb") as handle:
        manifest = handle.read()
    assert len(manifest) > 2

    source = FileSource(demo_path)
    fingerprint = source_fingerprint(source)
    params = {"kind": "implication", "threshold": "4/5"}

    for cut in range(len(manifest)):
        with open(store.manifest_path, "wb") as handle:
            handle.write(manifest[:cut])
        try:
            checkpoint = store.load_pass1(fingerprint, params)
        except (CheckpointCorrupted, CheckpointStale):
            continue
        assert checkpoint is None, (
            f"a manifest torn at byte {cut} was accepted as a checkpoint"
        )

    # The intact manifest still loads — the sweep did not wreck the store.
    with open(store.manifest_path, "wb") as handle:
        handle.write(manifest)
    assert store.load_pass1(fingerprint, params) is not None


def test_pipeline_recovers_from_torn_manifest(tmp_path, demo_path):
    """End-to-end on a strided subset of tear points: the pipeline
    silently rescans from scratch and mines the exact baseline."""
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    checkpoint_dir = str(tmp_path / "ckpt")
    _checkpointed_run(demo_path, checkpoint_dir)
    store = CheckpointStore(checkpoint_dir)
    with open(store.manifest_path, "rb") as handle:
        manifest = handle.read()

    for cut in range(0, len(manifest), max(1, len(manifest) // 6)):
        os.makedirs(checkpoint_dir, exist_ok=True)
        with open(store.manifest_path, "wb") as handle:
            handle.write(manifest[:cut])
        source = CountingFileSource(demo_path)
        rules = stream_implication_rules(
            source, 0.8, checkpoint_dir=checkpoint_dir
        )
        assert rules == baseline
        assert source.iterations == 1  # full rescan, never a fake resume


def test_checkpoint_for_other_threshold_is_not_reused(tmp_path, demo_path):
    baseline = stream_implication_rules(FileSource(demo_path), 0.7)
    checkpoint_dir = str(tmp_path / "ckpt")
    _checkpointed_run(demo_path, checkpoint_dir, threshold=0.8)

    source = CountingFileSource(demo_path)
    rules = stream_implication_rules(
        source, 0.7, checkpoint_dir=checkpoint_dir
    )
    assert rules == baseline
    assert source.iterations == 1


# ----------------------------------------------------------------------
# Transient-fault retries.
# ----------------------------------------------------------------------


def test_transient_spill_open_faults_are_retried(demo_path):
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    stats = PipelineStats()
    plan = FaultPlan([Fault("spill.open", first=1, count=2)])
    with faults.install(plan):
        rules = stream_implication_rules(
            FileSource(demo_path), 0.8, stats=stats
        )
    assert rules == baseline
    assert plan.fired["spill.open"] == 2
    assert stats.hundred_percent_scan.io_retries == 2


def test_persistent_spill_open_fault_propagates(demo_path):
    plan = FaultPlan([Fault("spill.open", first=1, count=10)])
    with faults.install(plan):
        with pytest.raises(OSError):
            stream_implication_rules(FileSource(demo_path), 0.8)


def test_transient_checkpoint_save_fault_is_retried(tmp_path, demo_path):
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    checkpoint_dir = str(tmp_path / "ckpt")
    plan = FaultPlan([Fault("checkpoint.save", first=1, count=2)])
    with faults.install(plan):
        rules = stream_implication_rules(
            FileSource(demo_path), 0.8, checkpoint_dir=checkpoint_dir
        )
    assert rules == baseline
    assert plan.fired["checkpoint.save"] == 2


def test_retry_io_backs_off_then_succeeds():
    delays = []
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError("transient")
        return "done"

    assert (
        retry_io(flaky, attempts=3, base_delay=0.5, sleep=delays.append)
        == "done"
    )
    assert delays == [0.5, 1.0]


def test_retry_io_exhausts_and_raises():
    def always_fails():
        raise OSError("permanent")

    with pytest.raises(OSError):
        retry_io(always_fails, attempts=3, sleep=lambda _: None)


def test_retry_io_does_not_retry_non_transient_errors():
    calls = []

    def crashes():
        calls.append(1)
        raise SimulatedCrash("dead")

    with pytest.raises(SimulatedCrash):
        retry_io(crashes, attempts=5, sleep=lambda _: None)
    assert len(calls) == 1


# ----------------------------------------------------------------------
# Memory guard: graceful degradation and partitioned fallback.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [11, 29, 47])
def test_memory_guard_bitmap_degradation_is_exact(seed):
    matrix = random_binary_matrix(seed)
    baseline = find_implication_rules(matrix, 0.8)
    guard = MemoryGuard(budget_bytes=1, action="bitmap")
    stats = PipelineStats()
    guarded = find_implication_rules(
        matrix,
        0.8,
        options=PruningOptions(memory_guard=guard),
        stats=stats,
    )
    assert guarded == baseline
    if guard.trips:
        assert guard.tripped_at is not None
        assert (
            stats.hundred_percent_scan.guard_tripped_at is not None
            or stats.partial_scan.guard_tripped_at is not None
        )


def test_memory_guard_similarity_degradation_is_exact():
    matrix = random_binary_matrix(seed=5)
    baseline = find_similarity_rules(matrix, 0.5)
    guard = MemoryGuard(budget_bytes=1, action="bitmap")
    assert (
        find_similarity_rules(
            matrix, 0.5, options=PruningOptions(memory_guard=guard)
        )
        == baseline
    )


def test_memory_guard_on_streaming_pipeline(demo_path):
    baseline = stream_implication_rules(FileSource(demo_path), 0.8)
    guard = MemoryGuard(budget_bytes=1, action="bitmap")
    assert (
        stream_implication_rules(FileSource(demo_path), 0.8, guard=guard)
        == baseline
    )
    assert guard.high_water_bytes > 0


def test_memory_guard_raise_action(demo_matrix):
    guard = MemoryGuard(budget_bytes=1, action="raise")
    with pytest.raises(MemoryBudgetExceeded):
        find_implication_rules(
            demo_matrix, 0.8, options=PruningOptions(memory_guard=guard)
        )


def test_memory_guard_rejects_bad_arguments():
    with pytest.raises(ValueError):
        MemoryGuard(budget_bytes=0)
    with pytest.raises(ValueError):
        MemoryGuard(budget_bytes=100, action="explode")


def test_mine_with_memory_budget_falls_back_to_partitioned(demo_matrix):
    baseline = find_implication_rules(demo_matrix, 0.8)
    rules, engine = mine_with_memory_budget(
        demo_matrix, 0.8, budget_bytes=1
    )
    assert engine == "partitioned"
    assert rules == baseline

    rules, engine = mine_with_memory_budget(demo_matrix, 0.8)
    assert engine == "dmc"
    assert rules == baseline


def test_mine_with_memory_budget_similarity(demo_matrix):
    baseline = find_similarity_rules(demo_matrix, 0.6)
    rules, engine = mine_with_memory_budget(
        demo_matrix, 0.6, kind="similarity", budget_bytes=1
    )
    assert engine == "partitioned"
    assert rules == baseline


# ----------------------------------------------------------------------
# Source and spill robustness.
# ----------------------------------------------------------------------


def test_single_shot_generator_is_detected():
    rows = [(0, 1), (1, 2), (0, 2)]
    source = IterableSource(row for row in rows)
    assert len(list(source.iter_rows())) == 3
    with pytest.raises(SourceNotReiterableError):
        list(source.iter_rows())


def test_single_shot_generator_fails_a_second_run_loudly():
    # One streaming run needs only one pass over the source (pass 2
    # replays the spill), so a generator survives the first run but a
    # re-run over the same source must fail loudly, not mine nothing.
    rows = [(0, 1), (1, 2), (0, 1, 2), (0, 1)]
    source = IterableSource(row for row in rows)
    first = stream_implication_rules(source, 0.8)
    assert len(first) > 0
    with pytest.raises(SourceNotReiterableError):
        stream_implication_rules(source, 0.8)


def test_list_backed_iterable_source_iterates_twice():
    rows = [(0, 1), (1, 2)]
    source = IterableSource(rows, columns=3)
    assert list(source.iter_rows()) == list(source.iter_rows())
    assert source.n_columns() == 3


def test_file_source_parses_columns_header_eagerly(tmp_path):
    path = tmp_path / "data.txt"
    path.write_text("#dmc-matrix\n#columns 9\n0 1\n", encoding="utf-8")
    source = FileSource(str(path))
    assert source.n_columns() == 9  # before any iteration


def test_file_source_without_header_has_unknown_columns(tmp_path):
    path = tmp_path / "bare.txt"
    path.write_text("0 1\n2 3\n", encoding="utf-8")
    assert FileSource(str(path)).n_columns() is None


def test_durable_spill_requires_directory_and_keeps_files(tmp_path):
    with pytest.raises(ValueError):
        BucketSpill(durable=True)
    directory = str(tmp_path / "buckets")
    spill = BucketSpill(directory=directory, durable=True)
    spill.add((0, 1))
    spill.add((0, 1, 2, 3))
    spill.finish()
    names = [name for name, _, _ in spill.bucket_files()]
    spill.close()
    spill.close()  # idempotent
    for name in names:
        assert os.path.exists(os.path.join(directory, name))


def test_temporary_spill_removes_stray_files_on_close():
    spill = BucketSpill()
    spill.add((0, 1, 2))
    directory = spill._directory
    with open(os.path.join(directory, "stray.tmp"), "w") as handle:
        handle.write("leftover")
    spill.close()
    assert not os.path.exists(directory)


def test_finished_spill_rejects_writes(tmp_path):
    spill = BucketSpill(directory=str(tmp_path / "b"), durable=True)
    spill.add((0, 1))
    spill.finish()
    with pytest.raises(RuntimeError):
        spill.add((1, 2))
    spill.close()


def test_spill_replays_rows_sparsest_first():
    with BucketSpill() as spill:
        spill.add((0, 1, 2, 3))
        spill.add((4,))
        spill.add((5, 6))
        rows = list(spill.read_sparsest_first())
    assert rows == [(4,), (5, 6), (0, 1, 2, 3)]


# ----------------------------------------------------------------------
# Fault-plan bookkeeping.
# ----------------------------------------------------------------------


def test_fault_plan_counts_and_windows():
    plan = FaultPlan([Fault("site", first=2, count=2)])
    plan.trip("site")  # call 1: no fault
    with pytest.raises(OSError):
        plan.trip("site")  # call 2
    with pytest.raises(OSError):
        plan.trip("site")  # call 3
    plan.trip("site")  # call 4: window passed
    assert plan.calls["site"] == 4
    assert plan.fired["site"] == 2


def test_trip_is_noop_without_a_plan():
    faults.trip("anything")  # must not raise
