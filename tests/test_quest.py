"""The IBM Quest-style generator (repro.datasets.quest)."""

import numpy as np
import pytest

from repro.baselines.apriori import apriori_frequent_itemsets
from repro.baselines.bruteforce import implication_rules_bruteforce
from repro.core.dmc_imp import find_implication_rules
from repro.datasets.quest import generate_quest, quest_t10i4


class TestGeneration:
    def test_shape(self):
        matrix = generate_quest(
            n_transactions=300, n_items=100, seed=0
        )
        assert matrix.n_rows == 300
        assert matrix.n_columns == 100

    def test_deterministic(self):
        a = generate_quest(n_transactions=100, n_items=50, seed=3)
        b = generate_quest(n_transactions=100, n_items=50, seed=3)
        assert a == b

    def test_seeds_differ(self):
        a = generate_quest(n_transactions=100, n_items=50, seed=1)
        b = generate_quest(n_transactions=100, n_items=50, seed=2)
        assert a != b

    def test_average_transaction_size_near_target(self):
        matrix = generate_quest(
            n_transactions=800,
            avg_transaction_size=10.0,
            n_items=400,
            seed=4,
        )
        mean_density = float(np.mean(matrix.row_densities()))
        assert 5 < mean_density < 16

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_quest(n_transactions=0)
        with pytest.raises(ValueError):
            generate_quest(n_items=0)
        with pytest.raises(ValueError):
            generate_quest(n_patterns=0)

    def test_t10i4_preset(self):
        matrix = quest_t10i4(n_transactions=200, n_items=100, seed=5)
        assert matrix.n_rows == 200
        assert matrix.n_columns == 100


class TestMiningOnQuest:
    def test_patterns_yield_frequent_itemsets(self):
        matrix = generate_quest(
            n_transactions=600,
            n_items=120,
            n_patterns=8,
            corruption=0.1,
            seed=6,
        )
        supports = apriori_frequent_itemsets(
            matrix, minsup_count=30, max_size=2
        )
        pairs = [itemset for itemset in supports if len(itemset) == 2]
        assert pairs  # the planted patterns co-occur

    def test_dmc_exact_on_quest(self):
        matrix = generate_quest(
            n_transactions=250, n_items=60, seed=7
        )
        for threshold in (0.9, 0.7):
            got = find_implication_rules(matrix, threshold).pairs()
            want = implication_rules_bruteforce(
                matrix, threshold
            ).pairs()
            assert got == want
