"""Rule serialization (repro.mining.export)."""

import pytest

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.rules import ImplicationRule, RuleSet
from repro.matrix.binary_matrix import Vocabulary
from repro.mining.export import (
    implication_rules_from_csv,
    implication_rules_to_csv,
    rules_from_json,
    rules_to_json,
    rules_to_text,
    similarity_rules_from_csv,
    similarity_rules_to_csv,
)
from tests.conftest import random_binary_matrix


class TestText:
    def test_one_line_per_rule_sorted(self):
        rules = RuleSet(
            [
                ImplicationRule(2, 3, 1, 1),
                ImplicationRule(0, 1, 1, 2),
            ]
        )
        lines = rules_to_text(rules).splitlines()
        assert lines == ["c0 -> c1 (0.500)", "c2 -> c3 (1.000)"]

    def test_labels_used_when_available(self):
        rules = RuleSet([ImplicationRule(0, 1, 1, 1)])
        vocabulary = Vocabulary(["jam", "butter"])
        assert rules_to_text(rules, vocabulary) == "jam -> butter (1.000)"


class TestCsvRoundTrip:
    def test_implication(self, tmp_path):
        matrix = random_binary_matrix(3)
        rules = implication_rules_bruteforce(matrix, 0.6)
        path = str(tmp_path / "rules.csv")
        implication_rules_to_csv(rules, path)
        assert implication_rules_from_csv(path) == rules

    def test_similarity(self, tmp_path):
        matrix = random_binary_matrix(4)
        rules = similarity_rules_bruteforce(matrix, 0.4)
        path = str(tmp_path / "pairs.csv")
        similarity_rules_to_csv(rules, path)
        assert similarity_rules_from_csv(path) == rules

    def test_empty_rule_set(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        implication_rules_to_csv(RuleSet(), path)
        assert len(implication_rules_from_csv(path)) == 0


class TestJsonRoundTrip:
    def test_implication(self):
        matrix = random_binary_matrix(5)
        rules = implication_rules_bruteforce(matrix, 0.7)
        assert rules_from_json(rules_to_json(rules)) == rules

    def test_similarity(self):
        matrix = random_binary_matrix(6)
        rules = similarity_rules_bruteforce(matrix, 0.5)
        assert rules_from_json(rules_to_json(rules)) == rules

    def test_labels_embedded(self):
        rules = RuleSet([ImplicationRule(0, 1, 1, 1)])
        vocabulary = Vocabulary(["jam", "butter"])
        document = rules_to_json(rules, vocabulary)
        assert '"antecedent_label": "jam"' in document

    def test_tampered_confidence_rejected(self):
        rules = RuleSet([ImplicationRule(0, 1, 1, 2)])
        document = rules_to_json(rules).replace("1/2", "3/4")
        with pytest.raises(ValueError):
            rules_from_json(document)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            rules_from_json('{"rules": [{"kind": "bogus"}]}')

    def test_exact_fractions_survive(self):
        rules = RuleSet([ImplicationRule(0, 1, hits=1, ones=3)])
        loaded = rules_from_json(rules_to_json(rules))
        from fractions import Fraction

        assert loaded[(0, 1)].confidence == Fraction(1, 3)
