"""Property-based tests of the paper's central claims (hypothesis).

The headline property is exactness: DMC mines the same rule set as the
brute-force oracle for *every* matrix, threshold, and optimization
combination — no false positives, no false negatives.
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.dmc_imp import PruningOptions, find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.miss_counting import BitmapConfig
from repro.core.partitioned import (
    find_implication_rules_partitioned,
    find_similarity_rules_partitioned,
)
from repro.matrix.binary_matrix import BinaryMatrix

# A compact matrix strategy: list of rows over a small column universe.
matrices = st.builds(
    lambda rows, m: BinaryMatrix(
        [[c for c in row if c < m] for row in rows], n_columns=m
    ),
    rows=st.lists(
        st.lists(st.integers(min_value=0, max_value=11), max_size=8),
        max_size=24,
    ),
    m=st.integers(min_value=1, max_value=12),
)

thresholds = st.fractions(
    min_value=Fraction(1, 10), max_value=Fraction(1), max_denominator=12
)

relaxed = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(matrix=matrices, threshold=thresholds)
def test_implication_exactness(matrix, threshold):
    """DMC-imp == oracle for any matrix and threshold."""
    got = find_implication_rules(matrix, threshold).pairs()
    want = implication_rules_bruteforce(matrix, threshold).pairs()
    assert got == want


@relaxed
@given(matrix=matrices, threshold=thresholds)
def test_similarity_exactness(matrix, threshold):
    """DMC-sim == oracle for any matrix and threshold."""
    got = find_similarity_rules(matrix, threshold).pairs()
    want = similarity_rules_bruteforce(matrix, threshold).pairs()
    assert got == want


@relaxed
@given(
    matrix=matrices,
    threshold=thresholds,
    switch_rows=st.integers(min_value=1, max_value=30),
)
def test_bitmap_switch_point_is_irrelevant(matrix, threshold, switch_rows):
    """Forcing the DMC-bitmap switch anywhere never changes the rules."""
    options = PruningOptions(
        bitmap=BitmapConfig(switch_rows=switch_rows, memory_budget_bytes=0)
    )
    got = find_implication_rules(matrix, threshold, options=options).pairs()
    want = implication_rules_bruteforce(matrix, threshold).pairs()
    assert got == want


@relaxed
@given(matrix=matrices, threshold=thresholds, seed=st.integers(0, 2**16))
def test_row_permutation_invariance(matrix, threshold, seed):
    """Mining is invariant under row permutation of the input."""
    import numpy as np

    rng = np.random.default_rng(seed)
    permutation = rng.permutation(matrix.n_rows)
    shuffled = matrix.select_rows([int(r) for r in permutation])
    assert (
        find_implication_rules(matrix, threshold).pairs()
        == find_implication_rules(shuffled, threshold).pairs()
    )


@relaxed
@given(matrix=matrices, threshold=thresholds)
def test_similarity_prunings_are_semantics_free(matrix, threshold):
    """Density and max-hits pruning change cost, never results."""
    baseline = find_similarity_rules(
        matrix,
        threshold,
        options=PruningOptions(
            density_pruning=False, max_hits_pruning=False
        ),
    ).pairs()
    pruned = find_similarity_rules(matrix, threshold).pairs()
    assert pruned == baseline


@relaxed
@given(
    matrix=matrices,
    low=thresholds,
    high=thresholds,
)
def test_threshold_monotonicity(matrix, low, high):
    """Raising the threshold can only shrink the rule set."""
    if low > high:
        low, high = high, low
    low_rules = find_implication_rules(matrix, low).pairs()
    high_rules = find_implication_rules(matrix, high).pairs()
    assert high_rules <= low_rules


@relaxed
@given(matrix=matrices, threshold=thresholds)
def test_rule_confidences_clear_threshold(matrix, threshold):
    """Every reported rule's exact confidence clears the threshold and
    matches a recount from the raw matrix."""
    sets = matrix.column_sets()
    for rule in find_implication_rules(matrix, threshold):
        assert rule.confidence >= threshold
        assert rule.hits == len(
            sets[rule.antecedent] & sets[rule.consequent]
        )
        assert rule.ones == len(sets[rule.antecedent])


@relaxed
@given(matrix=matrices, threshold=thresholds)
def test_similarity_symmetry_canonicalization(matrix, threshold):
    """Reported pairs are canonically ordered and their similarity is
    the true Jaccard value."""
    sets = matrix.column_sets()
    ones = matrix.column_ones()
    for rule in find_similarity_rules(matrix, threshold):
        assert (ones[rule.first], rule.first) < (
            ones[rule.second],
            rule.second,
        )
        union = sets[rule.first] | sets[rule.second]
        assert rule.similarity == Fraction(
            len(sets[rule.first] & sets[rule.second]), len(union)
        )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    matrix=matrices,
    threshold=thresholds,
    n_partitions=st.integers(min_value=1, max_value=5),
)
def test_partitioned_equals_single_pass(matrix, threshold, n_partitions):
    """The Section 7 divide-and-conquer variant is exact too."""
    want = implication_rules_bruteforce(matrix, threshold).pairs()
    got = find_implication_rules_partitioned(
        matrix, threshold, n_partitions=n_partitions
    ).pairs()
    assert got == want
    want_sim = similarity_rules_bruteforce(matrix, threshold).pairs()
    got_sim = find_similarity_rules_partitioned(
        matrix, threshold, n_partitions=n_partitions
    ).pairs()
    assert got_sim == want_sim


@relaxed
@given(matrix=matrices)
def test_hundred_percent_rules_are_subset_relations(matrix):
    """A 100% rule i => j holds iff S_i is a subset of S_j."""
    sets = matrix.column_sets()
    rules = find_implication_rules(matrix, 1)
    for rule in rules:
        assert sets[rule.antecedent] <= sets[rule.consequent]
    # Completeness: every canonical non-empty subset pair is reported.
    from repro.core.rules import canonical_before

    ones = matrix.column_ones()
    for i in range(matrix.n_columns):
        if not sets[i]:
            continue
        for j in range(matrix.n_columns):
            if i == j or not canonical_before(ones[i], i, ones[j], j):
                continue
            if sets[i] <= sets[j]:
                assert (i, j) in rules.pairs()
