"""Continuous mining through the service: live jobs, delta ingestion
over HTTP, backpressure, long-polling, retry jitter, the watch CLI,
and kill-9 chaos with client retry storms.

The batch-side contract (`tests/test_service.py`) is unchanged; this
suite covers the ``"kind": "live"`` surface added on top of it.  The
exactness bar stays the same: whatever sequence of deltas, crashes
and duplicate re-deliveries a client produces, the live rule set must
equal a one-shot mine of the concatenated data.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.cli import build_parser, main as cli_main
from repro.live.wal import DeltaLogError, OutOfOrderDelta
from repro.mining.export import rules_to_json
from repro.service import MiningService, Scheduler
from repro.service.jobs import (
    CANCELLED, DONE, QUEUED, RUNNING, JobIndex, JobSpec,
)
from repro.service.scheduler import MAX_RETRY_DELAY
from repro.runtime.guards import backoff_delay

SEED_ROWS = [["a", "b"], ["a", "b"], ["a"], ["b", "c"]]

DELTAS = {
    2: [["a", "b"], ["a", "b"], ["b", "c"]],
    3: [["a"], ["c"], ["a", "b"]],
    4: [["b", "c"], ["b", "c"], ["a", "b"], ["a", "b"]],
}


def live_doc(job_id, transactions=None, **extra):
    document = {
        "job_id": job_id,
        "kind": "live",
        "task": "implication",
        "threshold": "3/4",
        "data": {
            "transactions": (
                SEED_ROWS if transactions is None else transactions
            )
        },
    }
    document.update(extra)
    return document


def all_rows(upto=4):
    rows = list(SEED_ROWS)
    for seq in sorted(DELTAS):
        if seq <= upto:
            rows.extend(DELTAS[seq])
    return rows


def oracle_rules(rows, task="implication", threshold="3/4"):
    result = repro.mine(rows, task=task, threshold=threshold)
    document = json.loads(
        rules_to_json(result.rules, result.vocabulary)
    )
    return json.dumps(document["rules"], sort_keys=True)


def http(method, url, body=None, timeout=10):
    request = urllib.request.Request(
        url, method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read() or b"null"),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            json.loads(error.read() or b"null"),
            dict(error.headers),
        )


# ----------------------------------------------------------------------
# Spec-level validation of the new job kind
# ----------------------------------------------------------------------


class TestLiveSpec:
    def test_kind_roundtrip_and_default(self):
        spec = JobSpec.from_mapping(live_doc("l1"))
        assert spec.kind == "live"
        assert JobSpec.from_mapping(spec.to_mapping()) == spec
        batch = dict(live_doc("l2"))
        del batch["kind"]
        assert JobSpec.from_mapping(batch).kind == "batch"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec.from_mapping(live_doc("l1", kind="streaming"))

    def test_live_requires_inline_transactions(self):
        document = live_doc("l1")
        document["data"] = {"path": "rows.txt"}
        with pytest.raises(ValueError, match="transactions"):
            JobSpec.from_mapping(document)

    def test_empty_seed_is_fine(self):
        spec = JobSpec.from_mapping(live_doc("l1", transactions=[]))
        assert spec.kind == "live"


# ----------------------------------------------------------------------
# In-process live sessions
# ----------------------------------------------------------------------


@pytest.fixture
def service(tmp_path):
    svc = MiningService(str(tmp_path / "state"), n_slots=0)
    try:
        yield svc
    finally:
        svc.close()


class TestLiveService:
    def test_live_job_runs_and_tracks_rules(self, service):
        record, created = service.submit(live_doc("l1"))
        assert created
        assert service.get_job("l1").state == RUNNING
        session = service.live_session("l1")
        assert session is not None
        # Seed went in as delta sequence 1.
        assert session.miner.log.watermark == 1
        for seq in sorted(DELTAS):
            receipt = service.submit_delta(
                "l1", {"seq": seq, "rows": DELTAS[seq], "wait": True}
            )
            assert receipt.applied_seq >= seq
            document = session.rules_document()
            assert json.dumps(
                document["rules"], sort_keys=True
            ) == oracle_rules(all_rows(upto=seq))

    def test_duplicate_delta_is_noop(self, service):
        service.submit(live_doc("l1"))
        service.submit_delta(
            "l1", {"seq": 2, "rows": DELTAS[2], "wait": True}
        )
        receipt = service.submit_delta(
            "l1", {"seq": 2, "rows": DELTAS[2]}
        )
        assert receipt.status == "duplicate"
        session = service.live_session("l1")
        assert session.miner.n_rows == len(all_rows(upto=2))

    def test_delta_to_batch_job_is_conflict(self, service):
        document = live_doc("b1")
        del document["kind"]
        service.submit(document)
        with pytest.raises(DeltaLogError, match="batch"):
            service.submit_delta("b1", {"seq": 2, "rows": [["a"]]})

    def test_delta_to_unknown_job_is_keyerror(self, service):
        with pytest.raises(KeyError):
            service.submit_delta("ghost", {"seq": 2, "rows": [["a"]]})

    def test_malformed_delta_documents(self, service):
        service.submit(live_doc("l1"))
        for bad in (
            [],  # not a dict
            {"rows": [["a"]]},  # no seq
            {"seq": 2},  # no rows
            {"seq": True, "rows": [["a"]]},  # bool seq
            {"seq": 2, "rows": "ab"},  # string rows
            {"seq": 2, "rows": [["a"]], "frobnicate": 1},  # unknown key
        ):
            with pytest.raises((ValueError, TypeError)):
                service.submit_delta("l1", bad)

    def test_cancel_closes_session(self, service):
        service.submit(live_doc("l1"))
        assert service.cancel_job("l1") == CANCELLED
        assert service.live_session("l1") is None
        with pytest.raises(DeltaLogError):
            service.submit_delta("l1", {"seq": 2, "rows": [["a"]]})

    def test_close_reopen_recovers_session(self, tmp_path):
        state_dir = str(tmp_path / "state")
        svc = MiningService(state_dir, n_slots=0)
        try:
            svc.submit(live_doc("l1"))
            svc.submit_delta(
                "l1", {"seq": 2, "rows": DELTAS[2], "wait": True}
            )
        finally:
            svc.close()
        svc = MiningService(state_dir, n_slots=0)
        try:
            assert svc.get_job("l1").state == RUNNING
            session = svc.live_session("l1")
            assert session is not None
            # The re-opened session remembers both batches...
            assert session.miner.log.watermark == 2
            # ...dedupes a client retrying the last ACKed delta...
            receipt = svc.submit_delta(
                "l1", {"seq": 2, "rows": DELTAS[2]}
            )
            assert receipt.status == "duplicate"
            # ...and keeps ingesting with exact parity.
            svc.submit_delta(
                "l1", {"seq": 3, "rows": DELTAS[3], "wait": True}
            )
            document = session.rules_document()
            assert json.dumps(
                document["rules"], sort_keys=True
            ) == oracle_rules(all_rows(upto=3))
        finally:
            svc.close()

    def test_backpressure_when_applier_paused(self, service):
        service.submit(live_doc("l1"))
        session = service.live_session("l1")
        session.wait_applied(1)
        session.pause()
        try:
            rejected = None
            for seq in range(2, 2 + session.max_backlog + 2):
                try:
                    service.submit_delta(
                        "l1", {"seq": seq, "rows": [["a", "b"]]}
                    )
                except Exception as error:
                    rejected = error
                    break
            assert rejected is not None
            assert getattr(rejected, "status", None) == 429
            assert getattr(rejected, "kind", None) == "wal-backlog"
            assert rejected.retry_after is not None
        finally:
            session.resume()
        # Once the applier drains, the same delta is admitted.
        assert session.wait_applied(session.miner.log.watermark)


# ----------------------------------------------------------------------
# HTTP surface: deltas, status codes, long-poll, live run pages
# ----------------------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    svc = MiningService(
        str(tmp_path / "state"), n_slots=0, serve=True,
        max_live_backlog=4,
    )
    try:
        yield svc, svc.server.url
    finally:
        svc.close()


class TestLiveHTTP:
    def test_delta_lifecycle_over_http(self, served):
        service, base = served
        code, document, _ = http("POST", base + "/jobs", live_doc("l1"))
        assert code == 201
        assert document["state"] == RUNNING
        assert document["spec"]["kind"] == "live"
        assert "live" in document

        # Fresh commits: 202 (or 200 if the applier already folded
        # them by the time the response was built).
        code, body, _ = http(
            "POST", base + "/jobs/l1/deltas",
            {"seq": 2, "rows": DELTAS[2]},
        )
        assert code in (200, 202)
        assert body["status"] == "committed"
        assert body["watermark"] == 2

        # wait:true answers 200 with the enriched churn receipt.
        code, body, _ = http(
            "POST", base + "/jobs/l1/deltas",
            {"seq": 3, "rows": DELTAS[3], "wait": True},
        )
        assert code == 200
        assert body["applied_seq"] >= 3
        assert body["n_rules"] >= 0

        # Duplicate: explicit dedup response, still 200.
        code, body, _ = http(
            "POST", base + "/jobs/l1/deltas",
            {"seq": 3, "rows": DELTAS[3]},
        )
        assert (code, body["status"]) == (200, "duplicate")

        # Out-of-order: 409 naming the expected sequence.
        code, body, _ = http(
            "POST", base + "/jobs/l1/deltas",
            {"seq": 9, "rows": [["a"]]},
        )
        assert code == 409
        assert body["kind"] == "out-of-order"
        assert body["expected"] == 4

        # Mismatched duplicate payload: 409.
        code, body, _ = http(
            "POST", base + "/jobs/l1/deltas",
            {"seq": 3, "rows": [["zzz"]]},
        )
        assert (code, body["kind"]) == (409, "mismatch")

        # Malformed body: 400.
        assert http(
            "POST", base + "/jobs/l1/deltas", {"rows": [["a"]]}
        )[0] == 400

        # Unknown job: 404.
        assert http(
            "POST", base + "/jobs/ghost/deltas",
            {"seq": 1, "rows": [["a"]]},
        )[0] == 404

        # The live result document tracks everything ingested so far.
        code, result, _ = http("GET", base + "/jobs/l1/result")
        assert code == 200
        assert result["kind"] == "live"
        assert json.dumps(
            result["rules"], sort_keys=True
        ) == oracle_rules(all_rows(upto=3))

        # /runs/<id> serves the live status fields.
        code, run_page, _ = http("GET", base + "/runs/l1")
        assert code == 200
        assert run_page["live"]["watermark"] == 3
        assert run_page["live"]["applied_seq"] == 3
        assert run_page["backlog"] == 0

        # DELETE cancels; a further delta is a 409 conflict.
        code, body, _ = http("DELETE", base + "/jobs/l1")
        assert (code, body["state"]) == (200, CANCELLED)
        code, body, _ = http(
            "POST", base + "/jobs/l1/deltas",
            {"seq": 4, "rows": DELTAS[4]},
        )
        assert (code, body["kind"]) == (409, "conflict")

    def test_backlog_cap_is_429_with_retry_after(self, served):
        service, base = served
        http("POST", base + "/jobs", live_doc("l1"))
        session = service.live_session("l1")
        session.wait_applied(1)
        session.pause()
        try:
            seq, rejected = 2, None
            while seq < 20:
                code, body, headers = http(
                    "POST", base + "/jobs/l1/deltas",
                    {"seq": seq, "rows": [["a", "b"]]},
                )
                if code == 429:
                    rejected = (body, headers)
                    break
                assert code in (200, 202)
                seq += 1
            assert rejected is not None
            body, headers = rejected
            assert body["kind"] == "wal-backlog"
            assert int(headers["Retry-After"]) >= 1
        finally:
            session.resume()

    def test_long_poll_waits_for_batch_completion(self, tmp_path):
        svc = MiningService(
            str(tmp_path / "state"), n_slots=1, serve=True
        )
        try:
            base = svc.server.url
            document = live_doc("b1", transactions=[["a", "b"]] * 50)
            del document["kind"]
            code, _, _ = http("POST", base + "/jobs", document)
            assert code == 201
            started = time.monotonic()
            code, body, _ = http(
                "GET", base + "/jobs/b1?wait=30", timeout=40
            )
            assert code == 200
            assert body["state"] == DONE
            assert time.monotonic() - started < 30
        finally:
            svc.close()

    def test_long_poll_times_out_with_current_state(self, served):
        service, base = served
        # A live job never leaves RUNNING: the wait must expire and
        # still answer 200 with the current document.
        http("POST", base + "/jobs", live_doc("l1"))
        started = time.monotonic()
        code, body, _ = http("GET", base + "/jobs/l1?wait=0.3")
        assert code == 200
        assert body["state"] == RUNNING
        assert time.monotonic() - started >= 0.3

    def test_long_poll_rejects_bad_wait(self, served):
        service, base = served
        http("POST", base + "/jobs", live_doc("l1"))
        assert http("GET", base + "/jobs/l1?wait=soon")[0] == 400


# ----------------------------------------------------------------------
# Scheduler retry jitter (satellite)
# ----------------------------------------------------------------------


class TestRetryJitter:
    def make(self, tmp_path, **kwargs):
        index = JobIndex(str(tmp_path / "idx"))
        scheduler = Scheduler(index, n_slots=0, **kwargs)
        scheduler.close()
        return scheduler

    def test_delay_within_jitter_band(self, tmp_path):
        scheduler = self.make(
            tmp_path, retry_jitter=0.5,
            retry_rng=random.Random(42),
        )
        for attempt in range(1, 8):
            base = min(
                backoff_delay(attempt - 1, scheduler.retry_base_delay),
                MAX_RETRY_DELAY,
            )
            for _ in range(50):
                delay = scheduler.retry_delay(attempt)
                assert base * 0.5 <= delay <= base

    def test_zero_jitter_is_exact_backoff(self, tmp_path):
        scheduler = self.make(tmp_path, retry_jitter=0.0)
        for attempt in range(1, 8):
            assert scheduler.retry_delay(attempt) == min(
                backoff_delay(attempt - 1, scheduler.retry_base_delay),
                MAX_RETRY_DELAY,
            )

    def test_jitter_spreads_simultaneous_retries(self, tmp_path):
        scheduler = self.make(
            tmp_path, retry_rng=random.Random(7)
        )
        delays = {scheduler.retry_delay(3) for _ in range(20)}
        assert len(delays) > 10  # a thundering herd would see 1

    def test_jitter_validation(self, tmp_path):
        index = JobIndex(str(tmp_path / "idx"))
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError, match="retry_jitter"):
                Scheduler(index, n_slots=0, retry_jitter=bad)

    def test_seeded_rng_is_deterministic(self, tmp_path):
        first = self.make(tmp_path, retry_rng=random.Random(3))
        second = self.make(tmp_path, retry_rng=random.Random(3))
        assert [first.retry_delay(2) for _ in range(5)] == [
            second.retry_delay(2) for _ in range(5)
        ]


# ----------------------------------------------------------------------
# The watch CLI (satellite surface)
# ----------------------------------------------------------------------


class TestWatchCLI:
    def test_parser(self):
        args = build_parser().parse_args(
            ["watch", "state", "--job", "l1", "--no-follow"]
        )
        assert args.command == "watch"
        assert args.path == "state"
        assert args.job == "l1"
        assert args.no_follow is True
        args = build_parser().parse_args(["watch", "j.jsonl"])
        assert args.no_follow is False
        assert args.from_start is False

    def test_no_follow_renders_live_events(self, tmp_path, capsys):
        service = MiningService(str(tmp_path / "state"), n_slots=0)
        try:
            service.submit(live_doc("l1"))
            service.submit_delta(
                "l1", {"seq": 2, "rows": DELTAS[2], "wait": True}
            )
        finally:
            service.close()
        journal = os.path.join(str(tmp_path / "state"), "service.jsonl")
        assert cli_main(["watch", journal, "--no-follow"]) == 0
        out = capsys.readouterr().out
        assert "[l1]" in out
        assert "seq 2" in out
        assert "applied" in out

    def test_watch_accepts_state_dir(self, tmp_path, capsys):
        service = MiningService(str(tmp_path / "state"), n_slots=0)
        try:
            service.submit(live_doc("l1"))
        finally:
            service.close()
        code = cli_main(
            ["watch", str(tmp_path / "state"), "--no-follow"]
        )
        assert code == 0
        assert "l1" in capsys.readouterr().out

    def test_job_filter(self, tmp_path, capsys):
        service = MiningService(str(tmp_path / "state"), n_slots=0)
        try:
            service.submit(live_doc("l1"))
            service.submit(live_doc("l2"))
        finally:
            service.close()
        cli_main(
            ["watch", str(tmp_path / "state"), "--no-follow",
             "--job", "l2"]
        )
        out = capsys.readouterr().out
        assert "[l2]" in out
        assert "[l1]" not in out

    def test_missing_journal_is_an_error(self, tmp_path, capsys):
        code = cli_main(
            ["watch", str(tmp_path / "nope.jsonl"), "--no-follow"]
        )
        assert code == 1
        assert "cannot read journal" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Subprocess chaos: kill -9 under a delta retry storm
# ----------------------------------------------------------------------


def launch_serve(state_dir, *extra):
    environment = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    environment["PYTHONPATH"] = os.path.join(root, "src")
    try:
        os.unlink(os.path.join(state_dir, "service.url"))
    except OSError:
        pass
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", state_dir, "--slots", "1", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=environment,
    )
    url_file = os.path.join(state_dir, "service.url")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if os.path.exists(url_file):
            with open(url_file) as handle:
                return process, handle.read().strip()
        if process.poll() is not None:
            raise AssertionError(
                "serve exited early:\n"
                + process.stdout.read().decode("utf-8", "replace")
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("serve did not publish its URL in time")


def push_until_acked(base, job_id, seq, rows, deadline=60.0):
    """A retrying client: re-deliver one delta until the service
    acknowledges it (fresh commit OR duplicate both count)."""
    stop = time.monotonic() + deadline
    while time.monotonic() < stop:
        try:
            code, body, _ = http(
                "POST", f"{base}/jobs/{job_id}/deltas",
                {"seq": seq, "rows": rows, "wait": True},
            )
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.1)
            continue
        if code in (200, 202):
            return body
        if code == 429:
            time.sleep(0.2)
            continue
        raise AssertionError(f"delta {seq} rejected: {code} {body}")
    raise AssertionError(f"delta {seq} never acknowledged")


@pytest.mark.slow
class TestLiveChaos:
    def test_kill9_mid_storm_exact_parity(self, tmp_path):
        """SIGKILL the service while a client is pushing deltas; after
        each restart the client re-delivers everything unACKed (and
        some batches twice).  The final rule set must equal a one-shot
        mine of the concatenated rows and every row count exactly once."""
        state_dir = str(tmp_path / "state")
        rng = random.Random(99)
        labels = [f"c{i}" for i in range(10)]
        batches = [
            [
                rng.sample(labels, rng.randint(1, 4))
                for _ in range(rng.randint(5, 30))
            ]
            for _ in range(12)
        ]
        seed, deltas = batches[0], batches[1:]

        process, base = launch_serve(state_dir)
        code, _, _ = http(
            "POST", base + "/jobs",
            live_doc("storm", transactions=seed),
        )
        assert code == 201

        kill_after = {3, 7}  # restart twice mid-storm
        try:
            for offset, rows in enumerate(deltas):
                seq = offset + 2
                push_until_acked(base, "storm", seq, rows)
                if offset in kill_after:
                    process.kill()
                    process.wait(timeout=10)
                    process, base = launch_serve(state_dir)
                    # Retry storm: re-deliver everything ACKed so far;
                    # each must come back as an explicit duplicate.
                    for past_offset in range(offset + 1):
                        body = push_until_acked(
                            base, "storm", past_offset + 2,
                            deltas[past_offset],
                        )
                        assert body["status"] == "duplicate"
        finally:
            process.kill()
            process.wait(timeout=10)

        # A final clean restart: the recovered session must hold the
        # exact one-shot rule set over every row, counted once.
        process, base = launch_serve(state_dir)
        try:
            code, result, _ = http("GET", base + "/jobs/storm/result")
            assert code == 200
            everything = [row for batch in batches for row in batch]
            assert result["n_rows"] == len(everything)
            assert json.dumps(
                result["rules"], sort_keys=True
            ) == oracle_rules(everything)
        finally:
            process.kill()
            process.wait(timeout=10)

    def test_sigterm_drain_then_resume(self, tmp_path):
        """A graceful SIGTERM closes sessions cleanly; the next boot
        re-opens them and keeps ingesting from the same watermark."""
        state_dir = str(tmp_path / "state")
        process, base = launch_serve(state_dir)
        assert http(
            "POST", base + "/jobs", live_doc("l1")
        )[0] == 201
        push_until_acked(base, "l1", 2, DELTAS[2])
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)

        process, base = launch_serve(state_dir)
        try:
            code, body, _ = http("GET", base + "/jobs/l1")
            assert (code, body["state"]) == (200, RUNNING)
            push_until_acked(base, "l1", 3, DELTAS[3])
            code, result, _ = http("GET", base + "/jobs/l1/result")
            assert json.dumps(
                result["rules"], sort_keys=True
            ) == oracle_rules(all_rows(upto=3))
        finally:
            process.kill()
            process.wait(timeout=10)
