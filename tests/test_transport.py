"""The distributed transport seam (repro.runtime.transport + agent).

The headline invariant mirrors ``test_crashpoints.py``'s, one layer
up: **no network fault plan may change the mined rule set**.  The
fault matrix sweeps the transport seam — a node killed at each shard
boundary, a partition that heals into a fenced commit, a straggler
whose duplicate delivery must dedup, a lost result whose lease must
expire — and asserts rule-set parity with the serial miner every time.

Fast tests drive :class:`NodeAgent` instances on in-process threads
(the protocol is storage-only, so a thread is a faithful node);
subprocess-spawning sweeps are marked ``slow``.
"""

import json
import os
import threading

import pytest

from repro.core.dmc_imp import find_implication_rules
from repro.core.partitioned import find_implication_rules_partitioned
from repro.core.stats import PipelineStats
from repro.runtime.agent import NodeAgent
from repro.runtime.faults import NetworkFault, NetworkFaultPlan
from repro.runtime.storage import LOCAL_STORAGE, load_lease
from repro.runtime.supervisor import (
    ShardLedger,
    Supervisor,
    SupervisorError,
    Task,
)
from repro.runtime.transport import (
    RemoteTransport,
    Transport,
    lease_path,
    result_path,
)
from tests.conftest import random_binary_matrix


def _double(x):
    """Importable task fn: agents resolve it by module:qualname."""
    return 2 * x


def _boom(x):
    """Importable task fn that always fails (error-record path)."""
    raise RuntimeError(f"boom on {x!r}")


def _succeed_second_time(marker_path):
    """Fails once per marker file, then succeeds — across processes."""
    if os.path.exists(marker_path):
        return "recovered"
    with open(marker_path, "w", encoding="utf-8") as handle:
        handle.write("attempted")
    raise RuntimeError("first attempt fails")


def _tasks(n):
    return [Task(task_id=f"t-{i}", payload=i) for i in range(n)]


class _ThreadedAgents:
    """N in-process NodeAgents on daemon threads (storage-only nodes)."""

    def __init__(self, ledger_dir, count=2, lease_ttl=0.5, **kwargs):
        self.agents = [
            NodeAgent(
                ledger_dir,
                node_id=f"thread-node-{index}",
                poll_interval=0.02,
                lease_ttl=lease_ttl,
                **kwargs,
            )
            for index in range(count)
        ]
        self.threads = []

    def __enter__(self):
        for agent in self.agents:
            thread = threading.Thread(
                target=agent.serve_forever, daemon=True
            )
            thread.start()
            self.threads.append(thread)
        return self

    def __exit__(self, *exc_info):
        for agent in self.agents:
            agent.stop()
        for thread in self.threads:
            thread.join(timeout=10.0)


def _remote(ledger_dir, **kwargs):
    kwargs.setdefault("lease_ttl", 0.5)
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("node_grace", 8.0)
    return RemoteTransport(str(ledger_dir), **kwargs)


# ----------------------------------------------------------------------
# The Transport seam itself
# ----------------------------------------------------------------------


class TestTransportSeam:
    def test_declining_transport_falls_back_to_serial(self):
        class Declines(Transport):
            name = "declining"

            def usable(self, n_pending, n_workers):
                return False

        report = Supervisor(
            _double, n_workers=4, transport=Declines()
        ).run(_tasks(3))
        assert report.mode == "serial"
        assert report.results(_tasks(3)) == [0, 2, 4]

    def test_custom_transport_name_is_reported(self):
        class Inline(Transport):
            name = "inline"

            def run_tasks(self, supervisor, pending, report):
                for task in pending:
                    supervisor._complete(
                        task, supervisor.fn(task.payload), 1, 0.0, report,
                        quarantined=False,
                    )

        report = Supervisor(
            _double, n_workers=4, transport=Inline()
        ).run(_tasks(3))
        assert report.mode == "inline"
        assert report.results(_tasks(3)) == [0, 2, 4]

    def test_tasks_a_transport_abandons_finish_in_process(self):
        class GivesUp(Transport):
            name = "gives-up"

            def run_tasks(self, supervisor, pending, report):
                pass  # leaves every task without an outcome

        report = Supervisor(
            _double, n_workers=4, transport=GivesUp()
        ).run(_tasks(3))
        assert report.results(_tasks(3)) == [0, 2, 4]

    def test_resolve_transport_validates_inputs(self):
        from repro.core.partitioned import _resolve_transport

        with pytest.raises(ValueError, match="nodes= requires"):
            _resolve_transport(None, 2, None, None)
        with pytest.raises(ValueError, match="needs ledger_dir="):
            _resolve_transport("remote", 0, None, None)
        with pytest.raises(ValueError, match="Transport"):
            _resolve_transport("carrier-pigeon", 0, None, None)
        assert _resolve_transport(None, 0, None, None) is None
        assert _resolve_transport("local", 0, None, None) is None


# ----------------------------------------------------------------------
# Remote transport: the clean path (threaded node agents)
# ----------------------------------------------------------------------


class TestRemoteClean:
    def test_remote_parity_and_mode(self, tmp_path):
        transport = _remote(tmp_path / "ledger")
        supervisor = Supervisor(_double, transport=transport)
        with _ThreadedAgents(str(tmp_path / "ledger")):
            report = supervisor.run(_tasks(6))
        assert report.mode == "remote"
        assert report.results(_tasks(6)) == [0, 2, 4, 6, 8, 10]
        assert report.tasks_quarantined == 0
        assert report.degradations == []

    def test_remote_result_attempts_follow_fencing_token(self, tmp_path):
        transport = _remote(tmp_path / "ledger")
        supervisor = Supervisor(_double, transport=transport)
        with _ThreadedAgents(str(tmp_path / "ledger"), count=1):
            report = supervisor.run(_tasks(2))
        for outcome in report.outcomes.values():
            assert outcome.attempts >= 1

    def test_error_results_burn_a_retry_then_succeed(self, tmp_path):
        marker = str(tmp_path / "marker")
        transport = _remote(tmp_path / "ledger")
        supervisor = Supervisor(
            _succeed_second_time, task_retries=2, transport=transport
        )
        tasks = [Task(task_id="flaky", payload=marker)]
        with _ThreadedAgents(str(tmp_path / "ledger")):
            report = supervisor.run(tasks)
        assert report.results(tasks) == ["recovered"]
        assert report.task_retries >= 1

    def test_error_results_exhaust_into_quarantine(self, tmp_path):
        transport = _remote(tmp_path / "ledger")
        supervisor = Supervisor(
            _boom, task_retries=1, backoff_base=0.001, transport=transport
        )
        with _ThreadedAgents(str(tmp_path / "ledger")):
            with pytest.raises(SupervisorError):
                supervisor.run(_tasks(1))

    def test_ledger_resume_skips_recorded_shards(self, tmp_path):
        """Completed shards resume from the ledger; only the rest go
        over the wire — the coordinator-crash recovery story."""
        ledger_dir = str(tmp_path / "ledger")
        fingerprint = {"kind": "test"}
        stale = ShardLedger(ledger_dir, fingerprint)
        stale.record("t-0", 0)
        stale.record("t-1", 2)
        # A restarted coordinator builds a fresh ledger (taking over
        # ownership) and a fresh transport on the same directory.
        ledger = ShardLedger(ledger_dir, fingerprint)
        ledger.load()
        transport = _remote(ledger_dir)
        supervisor = Supervisor(_double, ledger=ledger, transport=transport)
        with _ThreadedAgents(ledger_dir):
            report = supervisor.run(_tasks(4))
        assert report.results(_tasks(4)) == [0, 2, 4, 6]
        assert report.outcomes["t-0"].from_ledger
        assert report.outcomes["t-1"].from_ledger
        assert not report.outcomes["t-2"].from_ledger


# ----------------------------------------------------------------------
# The degradation ladder without any nodes at all
# ----------------------------------------------------------------------


class TestNoNodes:
    def test_no_agents_ever_arrive_serial_fallback(self, tmp_path):
        transport = _remote(tmp_path / "ledger", node_grace=0.5)
        supervisor = Supervisor(_double, transport=transport)
        report = supervisor.run(_tasks(3))
        assert report.results(_tasks(3)) == [0, 2, 4]
        assert report.tasks_quarantined == 3
        assert report.degradations.count("node-serial-fallback") == 3

    def test_fallback_steals_the_shard_lease(self, tmp_path):
        """The bottom rung fences stragglers before recomputing."""
        captured = {}

        def capture(payload):
            captured["lease"] = load_lease(
                transport.storage,
                lease_path(str(tmp_path / "ledger"), "t-0"),
            )
            return payload

        transport = _remote(tmp_path / "ledger", node_grace=0.5)
        supervisor = Supervisor(capture, transport=transport)
        supervisor.run(_tasks(1))
        lease = captured["lease"]
        assert lease is not None
        assert lease.owner == transport.coordinator_id
        assert lease.expires_at is None  # fenced for good, not leased


# ----------------------------------------------------------------------
# Network-fault matrix on the mining pipeline (rule-set parity)
# ----------------------------------------------------------------------

N_PARTS = 4


def _committed_token(ledger_dir, task_id):
    """The fencing token recorded in the shard's committed result."""
    with open(result_path(str(ledger_dir), task_id), encoding="utf-8") as f:
        return int(json.load(f)["token"])



def _mine_remote(matrix, ledger_dir, plan=None, **transport_kwargs):
    transport_kwargs.setdefault("nodes", 2)
    transport_kwargs.setdefault("lease_ttl", 0.5)
    transport_kwargs.setdefault("poll_interval", 0.02)
    transport = RemoteTransport(
        str(ledger_dir), network_faults=plan, **transport_kwargs
    )
    stats = PipelineStats()
    rules = find_implication_rules_partitioned(
        matrix, 0.5, n_partitions=N_PARTS, ledger_dir=str(ledger_dir),
        transport=transport, stats=stats,
    )
    return rules, stats


class TestNetworkFaultMatrix:
    @pytest.fixture()
    def matrix(self):
        return random_binary_matrix(5, max_rows=60, max_columns=14)

    def test_remote_mining_parity_clean(self, matrix, tmp_path):
        want = find_implication_rules(matrix, 0.5).pairs()
        rules, stats = _mine_remote(matrix, tmp_path / "ledger")
        assert rules.pairs() == want
        assert stats.degradations == []

    @pytest.mark.slow
    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("shard", range(N_PARTS))
    def test_node_kill_at_each_shard_boundary(self, matrix, tmp_path, shard):
        """A node dies the moment it claims shard ``shard``: the lease
        expires and the shard is re-dispatched — rules stay exact."""
        want = find_implication_rules(matrix, 0.5).pairs()
        plan = NetworkFaultPlan(faults=(
            NetworkFault(
                "kill", task_id=f"implication-part-{shard:04d}"
            ),
        ))
        rules, stats = _mine_remote(matrix, tmp_path / "ledger", plan)
        assert rules.pairs() == want
        # The killed claim (token 1) died before committing: the
        # committed result must come from a re-dispatched claim.
        assert _committed_token(
            tmp_path / "ledger", f"implication-part-{shard:04d}"
        ) >= 2

    @pytest.mark.slow
    @pytest.mark.timeout(180)
    def test_partition_then_heal_is_fenced(self, matrix, tmp_path):
        """A partitioned node heals after its lease expired and the
        shard was re-dispatched; its late commit must be fenced or
        deduped, never clobber the winner."""
        want = find_implication_rules(matrix, 0.5).pairs()
        plan = NetworkFaultPlan(faults=(
            NetworkFault("partition", task_id="implication-part-0001"),
        ))
        rules, stats = _mine_remote(matrix, tmp_path / "ledger", plan)
        assert rules.pairs() == want
        # The healed straggler stood down at its fence check; the
        # committed result belongs to the re-dispatched claim.
        assert _committed_token(
            tmp_path / "ledger", "implication-part-0001"
        ) >= 2

    @pytest.mark.slow
    @pytest.mark.timeout(180)
    def test_dropped_result_expires_and_redispatches(self, matrix, tmp_path):
        want = find_implication_rules(matrix, 0.5).pairs()
        plan = NetworkFaultPlan(faults=(
            NetworkFault("drop", task_id="implication-part-0002"),
        ))
        rules, stats = _mine_remote(matrix, tmp_path / "ledger", plan)
        assert rules.pairs() == want
        assert _committed_token(
            tmp_path / "ledger", "implication-part-0002"
        ) >= 2

    @pytest.mark.slow
    @pytest.mark.timeout(180)
    def test_straggler_duplicate_delivery_dedups(self, matrix, tmp_path):
        """The ``delay`` straggler commits blind after re-dispatch;
        first-writer-wins must resolve the duplicate delivery."""
        want = find_implication_rules(matrix, 0.5).pairs()
        plan = NetworkFaultPlan(faults=(
            NetworkFault("delay", task_id="implication-part-0000"),
        ))
        rules, stats = _mine_remote(matrix, tmp_path / "ledger", plan)
        assert rules.pairs() == want

    @pytest.mark.slow
    @pytest.mark.timeout(180)
    def test_double_commit_dedups(self, matrix, tmp_path):
        want = find_implication_rules(matrix, 0.5).pairs()
        plan = NetworkFaultPlan(faults=(
            NetworkFault("duplicate", task_id=None, tokens=99),
        ))
        rules, stats = _mine_remote(matrix, tmp_path / "ledger", plan)
        assert rules.pairs() == want
        # Every winner's second delivery was suppressed — the agents'
        # persisted beat records are the authoritative count (the
        # coordinator's live counter is a best-effort observation).
        suppressed = 0
        nodes_dir = os.path.join(str(tmp_path / "ledger"), "nodes")
        for entry in os.listdir(nodes_dir):
            with open(os.path.join(nodes_dir, entry)) as handle:
                beat = json.load(handle)
            suppressed += int(beat["stats"]["duplicates_suppressed"])
        assert suppressed >= N_PARTS

    @pytest.mark.slow
    @pytest.mark.timeout(240)
    def test_every_node_dies_every_time_full_ladder(self, matrix, tmp_path):
        """kill on every token: the ladder must walk all the way down
        to coordinator-serial quarantine, still exact."""
        want = find_implication_rules(matrix, 0.5).pairs()
        plan = NetworkFaultPlan(faults=(
            NetworkFault("kill", task_id=None, tokens=99),
        ))
        rules, stats = _mine_remote(
            matrix, tmp_path / "ledger", plan, node_grace=2.5,
        )
        assert rules.pairs() == want
        assert stats.tasks_quarantined == N_PARTS
        assert stats.degradations  # ladder steps were recorded

    @pytest.mark.slow
    @pytest.mark.timeout(180)
    def test_lease_expiry_mid_write_cannot_corrupt(self, matrix, tmp_path):
        """Both a partition-heal (fence-checked) and a blind straggler
        (link-level dedup) race the re-dispatched winner; the committed
        result file stays a single valid JSON document."""
        want = find_implication_rules(matrix, 0.5).pairs()
        plan = NetworkFaultPlan(faults=(
            NetworkFault("partition", task_id="implication-part-0001"),
            NetworkFault("delay", task_id="implication-part-0003"),
        ))
        rules, stats = _mine_remote(matrix, tmp_path / "ledger", plan)
        assert rules.pairs() == want
        for shard in range(N_PARTS):
            path = result_path(
                str(tmp_path / "ledger"), f"implication-part-{shard:04d}"
            )
            if os.path.exists(path):
                with open(path, encoding="utf-8") as handle:
                    record = json.load(handle)  # parses = not torn
                assert record["task_id"] == f"implication-part-{shard:04d}"


# ----------------------------------------------------------------------
# The public knobs (mine() facade and CLI wiring)
# ----------------------------------------------------------------------


class TestPublicSurface:
    def test_mine_facade_remote_transport(self, tmp_path):
        from repro.api import mine

        matrix = random_binary_matrix(5, max_rows=40, max_columns=10)
        want = find_implication_rules(matrix, 0.5).pairs()
        result = mine(
            matrix, minconf=0.5, transport="remote", nodes=2,
            ledger_dir=str(tmp_path / "ledger"), n_partitions=3,
        )
        assert result.engine == "partitioned"
        assert result.rules.pairs() == want

    def test_config_validation(self, tmp_path):
        from repro.api import MiningConfig

        with pytest.raises(ValueError, match="ledger_dir"):
            MiningConfig(threshold=0.9, transport="remote")
        with pytest.raises(ValueError, match="transport='remote'"):
            MiningConfig(threshold=0.9, nodes=2)
        with pytest.raises(ValueError, match="mutually exclusive"):
            MiningConfig(
                threshold=0.9, transport="remote",
                ledger_dir=str(tmp_path), memory_budget=1 << 20,
            )

    def test_cli_agent_drains_a_queue(self, tmp_path):
        """`repro agent --max-idle` serves a pre-seeded queue and exits."""
        import base64
        import pickle

        from repro.cli import main
        from repro.runtime.transport import task_path

        ledger = str(tmp_path / "ledger")
        transport = _remote(ledger)
        transport._setup_run(
            Supervisor(_double), [Task(task_id="t-0", payload=21)]
        )
        code = main([
            "agent", "--ledger", ledger, "--max-idle", "0.5",
            "--poll", "0.02", "--lease-ttl", "0.5",
        ])
        assert code == 0
        with open(result_path(ledger, "t-0"), encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["result"] == 42
        # the queue entry survives (results are separate), sanity only
        assert os.path.exists(task_path(ledger, "t-0"))
        assert base64 and pickle  # imports used by _setup_run round-trip
