"""The README's code blocks must actually run."""

import os
import re

README = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "README.md",
)


def _python_blocks():
    text = open(README, encoding="utf-8").read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert len(_python_blocks()) >= 1


def test_readme_python_blocks_execute():
    for block in _python_blocks():
        namespace = {}
        exec(compile(block, README, "exec"), namespace)  # noqa: S102


def test_readme_mentions_all_cli_commands():
    text = open(README, encoding="utf-8").read()
    for command in ("check", "report", "mine-imp", "mine-topk",
                    "generate"):
        assert command in text
