"""Min-Hash similarity mining (repro.baselines.minhash)."""

import numpy as np
import pytest

from repro.baselines.bruteforce import similarity_rules_bruteforce
from repro.baselines.minhash import (
    minhash_signatures,
    minhash_similarity_rules,
)
from repro.datasets.synthetic import planted_similarity_matrix
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


class TestSignatures:
    def test_shape(self):
        matrix = random_binary_matrix(1)
        signatures = minhash_signatures(matrix, k=7)
        assert signatures.shape == (7, matrix.n_columns)

    def test_empty_column_is_infinite(self):
        matrix = BinaryMatrix([[0]], n_columns=2)
        signatures = minhash_signatures(matrix, k=3)
        assert np.all(np.isinf(signatures[:, 1]))
        assert np.all(np.isfinite(signatures[:, 0]))

    def test_identical_columns_share_signatures(self):
        matrix = BinaryMatrix([[0, 1], [0, 1], [2]], n_columns=3)
        signatures = minhash_signatures(matrix, k=10)
        assert np.array_equal(signatures[:, 0], signatures[:, 1])

    def test_deterministic_per_seed(self):
        matrix = random_binary_matrix(2)
        a = minhash_signatures(matrix, k=5, seed=3)
        b = minhash_signatures(matrix, k=5, seed=3)
        assert np.array_equal(a, b)

    def test_match_probability_estimates_similarity(self):
        """Prob[h(c_i) == h(c_j)] == Sim(c_i, c_j) (paper Section 3.2),
        checked statistically at k=600."""
        matrix = BinaryMatrix(
            [[0, 1]] * 3 + [[0]] * 2 + [[1]] * 1, n_columns=2
        )
        # Sim = 3 / 6 = 0.5
        signatures = minhash_signatures(matrix, k=600, seed=0)
        estimate = float(
            np.mean(signatures[:, 0] == signatures[:, 1])
        )
        assert abs(estimate - 0.5) < 0.08


class TestMining:
    def test_no_false_positives_ever(self):
        for seed in range(8):
            matrix = random_binary_matrix(seed)
            truth = similarity_rules_bruteforce(matrix, 0.5)
            result = minhash_similarity_rules(
                matrix, 0.5, k=30, seed=seed
            )
            assert result.rules.pairs() <= truth.pairs(), seed

    def test_high_k_recovers_planted_pairs(self):
        matrix = planted_similarity_matrix(
            120, 20, groups=[([0, 1], 0.9), ([2, 3], 0.85)], seed=5
        )
        truth = similarity_rules_bruteforce(matrix, 0.8)
        result = minhash_similarity_rules(matrix, 0.8, k=200, seed=1)
        assert result.false_negatives(truth) == set()
        assert {(0, 1), (2, 3)} <= result.rules.pairs()

    def test_banding_mode(self):
        matrix = planted_similarity_matrix(
            100, 10, groups=[([0, 1], 0.95)], seed=2
        )
        result = minhash_similarity_rules(
            matrix, 0.9, k=24, bands=12, seed=0
        )
        assert (0, 1) in result.rules.pairs()

    def test_invalid_bands_rejected(self):
        matrix = random_binary_matrix(0)
        with pytest.raises(ValueError):
            minhash_similarity_rules(matrix, 0.5, k=10, bands=11)

    def test_rule_statistics_are_exact(self):
        matrix = planted_similarity_matrix(
            80, 8, groups=[([0, 1], 0.9)], seed=3
        )
        result = minhash_similarity_rules(matrix, 0.5, k=100)
        sets = matrix.column_sets()
        for rule in result.rules:
            assert rule.intersection == len(
                sets[rule.first] & sets[rule.second]
            )

    def test_candidates_checked_reported(self):
        matrix = random_binary_matrix(5)
        result = minhash_similarity_rules(matrix, 0.5, k=20)
        assert result.candidates_checked >= len(result.rules)
