"""Continuous mining: the delta WAL and the incremental live miner.

The heart of this suite is the parity matrix: *any* partition of a
dataset into append batches — across implication/similarity, several
thresholds and both comparison engines (``dmc`` and ``vector``) —
must leave the live miner's rule set identical to a one-shot mine of
the concatenated data, batch boundary by batch boundary, and still
identical after the process is killed at every enumerated storage
operation and restarted (the PR-4/PR-8 crash-point discipline).
"""

from __future__ import annotations

import json
import random

import pytest

import repro
from repro.core.incremental import (
    RetiredPair,
    canonical_pair,
    pair_alive,
    pair_rule,
    readmission_bound,
    readmission_required,
)
from repro.live import (
    DeltaLog,
    DeltaMismatch,
    LiveMiner,
    OutOfOrderDelta,
    SnapshotStore,
)
from repro.mining.diff import DiffEntry, diff_rules
from repro.observe.journal import RunJournal, read_journal
from repro.observe.live import LiveRunStatus
from repro.runtime.crashpoints import enumerate_crash_points
from repro.runtime.storage import FaultyStorage

from fractions import Fraction


def make_rows(n_rows, n_labels, seed, max_width=5):
    rng = random.Random(seed)
    labels = [f"c{i}" for i in range(n_labels)]
    return [
        rng.sample(labels, rng.randint(1, max_width))
        for _ in range(n_rows)
    ]


def random_splits(rows, seed, n_batches=None):
    """Partition ``rows`` into contiguous non-empty append batches."""
    rng = random.Random(seed)
    if n_batches is None:
        n_batches = rng.randint(1, max(2, len(rows) // 10))
    n_batches = min(n_batches, len(rows))
    cuts = sorted(rng.sample(range(1, len(rows)), n_batches - 1))
    bounds = [0] + cuts + [len(rows)]
    return [rows[a:b] for a, b in zip(bounds, bounds[1:])]


def canon(rules):
    return sorted(str(rule) for rule in rules.sorted())


# ----------------------------------------------------------------------
# The delta WAL.
# ----------------------------------------------------------------------


class TestDeltaLog:
    def test_append_read_watermark(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        assert log.watermark == 0
        result = log.append(1, [["a", "b"], ["c"]])
        assert result.status == "committed"
        assert result.watermark == 1
        assert log.read(1) == [["a", "b"], ["c"]]
        log.append(2, [["a"]])
        assert log.watermark == 2
        assert list(log.iter_rows()) == [
            (1, [["a", "b"], ["c"]]), (2, [["a"]]),
        ]

    def test_duplicate_is_noop_with_explicit_status(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        log.append(1, [["a"]])
        result = log.append(1, [["a"]])
        assert result.duplicate
        assert result.status == "duplicate"
        assert log.watermark == 1

    def test_duplicate_with_different_rows_is_rejected(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        log.append(1, [["a"]])
        with pytest.raises(DeltaMismatch):
            log.append(1, [["b"]])

    def test_out_of_order_is_typed_and_names_expected(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        log.append(1, [["a"]])
        with pytest.raises(OutOfOrderDelta) as excinfo:
            log.append(3, [["b"]])
        assert excinfo.value.seq == 3
        assert excinfo.value.expected == 2

    def test_bad_sequence_numbers_rejected(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        for bad in (0, -1, True, "1", 1.0):
            with pytest.raises(ValueError):
                log.append(bad, [["a"]])

    def test_string_rows_rejected(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        with pytest.raises(ValueError):
            log.append(1, ["ab"])  # a string row is a label-list bug

    def test_watermark_rescanned_on_open(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        log.append(1, [["a"]])
        log.append(2, [["b"]])
        reopened = DeltaLog(str(tmp_path / "wal"))
        assert reopened.watermark == 2
        assert reopened.read(2) == [["b"]]

    def test_gap_on_disk_truncates_watermark(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        log.append(1, [["a"]])
        log.append(2, [["b"]])
        log.append(3, [["c"]])
        (tmp_path / "wal" / "delta-00000002.json").unlink()
        reopened = DeltaLog(str(tmp_path / "wal"))
        # The contiguous prefix is the log; 3 is unreachable.
        assert reopened.watermark == 1

    def test_chain_sha_links_segments(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        log.append(1, [["a"]])
        log.append(2, [["b"]])
        sha1 = log.chain_sha(1)
        sha2 = log.chain_sha(2)
        assert sha1 != sha2
        # Recomputable from a fresh open (cache cold).
        reopened = DeltaLog(str(tmp_path / "wal"))
        assert reopened.chain_sha(2) == sha2

    def test_labels_coerced_to_str(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal"))
        log.append(1, [[1, 2], [3]])
        assert log.read(1) == [["1", "2"], ["3"]]


class TestSnapshotStore:
    def test_roundtrip(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "state"))
        assert store.load() is None
        store.save({"seq": 3, "ones": [1, 2]})
        assert store.load() == {"seq": 3, "ones": [1, 2]}

    def test_garbage_is_treated_as_absent(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "state"))
        store.save({"seq": 1})
        (tmp_path / "state" / "snapshot.json").write_text("{torn")
        assert store.load() is None


# ----------------------------------------------------------------------
# The pure incremental arithmetic.
# ----------------------------------------------------------------------


class TestIncrementalMath:
    def test_pair_alive_matches_thresholds(self):
        thr = Fraction(3, 4)
        # Implication: canonical direction is the sparser side.
        assert pair_alive("implication", thr, 10, 4, 3)
        assert not pair_alive("implication", thr, 10, 4, 2)
        # Similarity: |A∩B| / |A∪B|.
        assert pair_alive("similarity", Fraction(1, 2), 4, 4, 3)
        assert not pair_alive("similarity", Fraction(1, 2), 6, 6, 3)

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            pair_alive("frequency", Fraction(1, 2), 1, 1, 1)

    def test_readmission_bound_dominates_true_hits(self):
        rng = random.Random(0)
        for _ in range(300):
            ones_a_r = rng.randint(0, 20)
            ones_b_r = rng.randint(0, 20)
            hits_r = rng.randint(0, min(ones_a_r, ones_b_r))
            grow_a = rng.randint(0, 15)
            grow_b = rng.randint(0, 15)
            true_growth = rng.randint(0, min(grow_a, grow_b))
            snapshot = RetiredPair(hits_r, ones_a_r, ones_b_r)
            bound = readmission_bound(
                snapshot, ones_a_r + grow_a, ones_b_r + grow_b
            )
            assert bound >= hits_r + true_growth

    def test_readmission_required_never_false_negative(self):
        # If the exact count makes a rule, the bound must flag it.
        rng = random.Random(1)
        thr = Fraction(2, 3)
        for _ in range(300):
            ones_a_r = rng.randint(1, 15)
            ones_b_r = rng.randint(1, 15)
            hits_r = rng.randint(0, min(ones_a_r, ones_b_r))
            grow = rng.randint(0, 10)
            ones_a, ones_b = ones_a_r + grow, ones_b_r + grow
            hits = min(hits_r + grow, ones_a, ones_b)
            snapshot = RetiredPair(hits_r, ones_a_r, ones_b_r)
            for task in ("implication", "similarity"):
                if pair_alive(task, thr, ones_a, ones_b, hits):
                    assert readmission_required(
                        task, thr, snapshot, ones_a, ones_b
                    )

    def test_canonical_pair_tracks_current_counts(self):
        assert canonical_pair([5, 2], 0, 1) == (1, 0)
        assert canonical_pair([2, 5], 0, 1) == (0, 1)
        # Equal counts: lower id first.
        assert canonical_pair([3, 3], 1, 0) == (0, 1)

    def test_pair_rule_matches_engine_objects(self):
        ones = [4, 10]
        rule = pair_rule("implication", Fraction(1, 2), ones, 0, 1, 3)
        assert rule.antecedent == 0 and rule.consequent == 1
        assert rule.hits == 3 and rule.ones == 4
        sim = pair_rule("similarity", Fraction(1, 4), ones, 0, 1, 3)
        assert sim.intersection == 3 and sim.union == 11
        assert pair_rule("implication", Fraction(9, 10), ones, 0, 1, 3) is None


# ----------------------------------------------------------------------
# The parity matrix (the acceptance criterion).
# ----------------------------------------------------------------------


PARITY_CASES = [
    ("implication", "2/3"),
    ("implication", "9/10"),
    ("similarity", "1/2"),
    ("similarity", "3/4"),
]


class TestParityMatrix:
    @pytest.mark.parametrize("task,threshold", PARITY_CASES)
    @pytest.mark.parametrize("engine", ["dmc", "vector"])
    @pytest.mark.parametrize("split_seed", [0, 1, 2])
    def test_random_splits_match_one_shot_mine(
        self, tmp_path, task, threshold, engine, split_seed
    ):
        rows = make_rows(160, 12, seed=split_seed + 17)
        batches = random_splits(rows, seed=split_seed)
        miner = LiveMiner(
            str(tmp_path / "live"), task, threshold, snapshot_every=3
        )
        consumed = 0
        for seq, batch in enumerate(batches, 1):
            miner.submit(seq, batch)
            consumed += len(batch)
            # Parity at *every* batch boundary, not just the end.
            oracle = repro.mine(
                rows[:consumed], task=task, threshold=threshold,
                engine=engine,
            )
            assert miner.rules() == oracle.rules

    @pytest.mark.parametrize("task,threshold", PARITY_CASES[:2])
    def test_restart_at_every_batch_boundary(
        self, tmp_path, task, threshold
    ):
        rows = make_rows(120, 10, seed=5)
        batches = random_splits(rows, seed=9, n_batches=6)
        root = str(tmp_path / "live")
        consumed = 0
        for seq, batch in enumerate(batches, 1):
            # A fresh miner per batch = a restart before every submit.
            miner = LiveMiner(root, task, threshold, snapshot_every=2)
            miner.submit(seq, batch)
            consumed += len(batch)
            oracle = repro.mine(
                rows[:consumed], task=task, threshold=threshold
            )
            assert miner.rules() == oracle.rules

    def test_single_batch_equals_one_shot(self, tmp_path):
        rows = make_rows(80, 8, seed=2)
        miner = LiveMiner(str(tmp_path / "live"), "implication", "2/3")
        miner.submit(1, rows)
        oracle = repro.mine(rows, task="implication", threshold="2/3")
        assert miner.rules() == oracle.rules

    def test_vocabulary_ids_match_batch_engine(self, tmp_path):
        rows = [["b", "a"], ["c", "a", "c"], ["d"]]
        miner = LiveMiner(str(tmp_path / "live"), "implication", "1/2")
        miner.submit(1, rows[:2])
        miner.submit(2, rows[2:])
        from repro.matrix.binary_matrix import BinaryMatrix

        matrix = BinaryMatrix.from_transactions(rows)
        assert miner.vocabulary().labels() == matrix.vocabulary.labels()


# ----------------------------------------------------------------------
# Exactly-once and sequence discipline through the miner.
# ----------------------------------------------------------------------


class TestExactlyOnce:
    def test_duplicate_submit_is_noop(self, tmp_path):
        miner = LiveMiner(str(tmp_path / "live"), "implication", "2/3")
        rows = make_rows(40, 8, seed=3)
        miner.submit(1, rows[:20])
        before = canon(miner.rules())
        receipt = miner.submit(1, rows[:20])
        assert receipt.status == "duplicate"
        assert canon(miner.rules()) == before
        assert miner.n_rows == 20

    def test_duplicate_storm(self, tmp_path):
        miner = LiveMiner(str(tmp_path / "live"), "similarity", "1/2")
        rows = make_rows(60, 8, seed=4)
        batches = random_splits(rows, seed=4, n_batches=4)
        for seq, batch in enumerate(batches, 1):
            for _ in range(3):  # a retrying client re-delivers everything
                receipt = miner.submit(seq, batch)
            assert receipt.status == "duplicate"
        oracle = repro.mine(rows, task="similarity", threshold="1/2")
        assert miner.rules() == oracle.rules
        assert miner.n_rows == len(rows)

    def test_out_of_order_rejected_without_state_change(self, tmp_path):
        miner = LiveMiner(str(tmp_path / "live"), "implication", "2/3")
        miner.submit(1, [["a", "b"]])
        with pytest.raises(OutOfOrderDelta):
            miner.submit(5, [["c"]])
        assert miner.n_rows == 1
        assert miner.log.watermark == 1


# ----------------------------------------------------------------------
# Re-admission and the degradation ladder.
# ----------------------------------------------------------------------


class TestReadmission:
    def test_pair_readmitted_exactly_when_math_requires(self, tmp_path):
        miner = LiveMiner(str(tmp_path / "live"), "implication", "3/4")
        # conf(a->b) = conf(b->a) = 1/2 < 3/4: the pair retires.
        miner.submit(1, [["a", "b"], ["a"], ["b"]])
        assert len(miner._retired) == 1
        assert len(miner.rules()) == 0
        # Growth that cannot reach the threshold: no replay happens.
        miner.submit(2, [["c"]])
        assert miner.replays_total == 0
        # Growth that makes the rule possible again: exact replay.
        miner.submit(3, [["a", "b"]] * 10)
        assert miner.readmissions_total == 1
        assert len(miner.rules()) == 1
        oracle = repro.mine(
            [["a", "b"], ["a"], ["b"]] + [["c"]] + [["a", "b"]] * 10,
            task="implication", threshold="3/4",
        )
        assert miner.rules() == oracle.rules

    def test_spurious_flag_re_retires_with_tighter_snapshot(
        self, tmp_path
    ):
        miner = LiveMiner(str(tmp_path / "live"), "implication", "3/4")
        miner.submit(1, [["a", "b"], ["a"], ["b"]])
        snapshot_before = next(iter(miner._retired.values()))
        # Both columns grow but never together: the optimistic bound
        # fires, the recount says no, the pair re-retires tighter.
        miner.submit(2, [["a"], ["b"]] * 6)
        assert miner.replays_total >= 1
        assert miner.readmissions_total == 0
        assert len(miner._retired) == 1
        snapshot_after = next(iter(miner._retired.values()))
        assert snapshot_after.ones_a > snapshot_before.ones_a
        assert len(miner.rules()) == 0

    def test_replay_budget_degrades_to_full_rebuild(self, tmp_path):
        rows = make_rows(200, 8, seed=6, max_width=4)
        miner = LiveMiner(
            str(tmp_path / "live"), "implication", "3/4",
            replay_budget_rows=20,
        )
        for seq, batch in enumerate(random_splits(rows, 6, 8), 1):
            miner.submit(seq, batch)
        assert miner.degrades_total > 0
        oracle = repro.mine(rows, task="implication", threshold="3/4")
        assert miner.rules() == oracle.rules

    def test_snapshot_fingerprint_mismatch_degrades(self, tmp_path):
        root = str(tmp_path / "live")
        miner = LiveMiner(root, "implication", "2/3", snapshot_every=1)
        rows = make_rows(60, 8, seed=7)
        miner.submit(1, rows[:30])
        miner.submit(2, rows[30:])
        # Corrupt the snapshot's chain fingerprint: the restart must
        # distrust it and take the journalled full re-mine.
        snapshot_path = tmp_path / "live" / "state" / "snapshot.json"
        document = json.loads(snapshot_path.read_text())
        document["chain_sha"] = "0" * 64
        snapshot_path.write_text(json.dumps(document))
        journal_path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(journal_path, run_id="t")
        recovered = LiveMiner(
            root, "implication", "2/3", journal=journal
        )
        journal.close()
        assert recovered.degrades_total >= 1
        events = [r["event"] for r in read_journal(journal_path)]
        assert "live-degrade" in events
        oracle = repro.mine(rows, task="implication", threshold="2/3")
        assert recovered.rules() == oracle.rules

    def test_config_mismatch_is_an_error_not_a_degrade(self, tmp_path):
        root = str(tmp_path / "live")
        miner = LiveMiner(root, "implication", "2/3", snapshot_every=1)
        miner.submit(1, [["a", "b"]])
        with pytest.raises(ValueError):
            LiveMiner(root, "similarity", "2/3")


# ----------------------------------------------------------------------
# Journalled rule churn and status publishing.
# ----------------------------------------------------------------------


class TestChurnSurface:
    def test_rule_appear_disappear_events(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(journal_path, run_id="t")
        miner = LiveMiner(
            str(tmp_path / "live"), "implication", "3/4",
            journal=journal, journal_extra={"job_id": "live-1"},
        )
        miner.submit(1, [["a", "b"]] * 3)          # rule appears
        miner.submit(2, [["a"], ["a"], ["b"]])     # rule disappears
        journal.close()
        records = read_journal(journal_path)
        events = [r["event"] for r in records]
        assert "rule-appear" in events
        assert "rule-disappear" in events
        assert "delta-applied" in events
        for record in records:
            assert record["job_id"] == "live-1"

    def test_events_visible_before_journal_close(self, tmp_path):
        """Churn events must reach disk at batch granularity — a
        `repro watch` follower cannot wait for the journal's 32-event
        fsync batch while the journal stays open."""
        journal_path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(journal_path, run_id="t")
        miner = LiveMiner(
            str(tmp_path / "live"), "implication", "3/4",
            journal=journal,
        )
        miner.submit(1, [["a", "b"]] * 3)
        events = [r["event"] for r in read_journal(journal_path)]
        journal.close()
        assert "delta-applied" in events
        assert "rule-appear" in events

    def test_status_live_fields(self, tmp_path):
        status = LiveRunStatus(run_id="live-1")
        miner = LiveMiner(
            str(tmp_path / "live"), "similarity", "1/2", status=status
        )
        miner.submit(1, make_rows(30, 6, seed=8))
        snapshot = status.snapshot()
        assert snapshot["live"]["watermark"] == 1
        assert snapshot["live"]["applied_seq"] == 1
        assert snapshot["live"]["n_rows"] == 30
        assert snapshot["rows_scanned"] == 30

    def test_export_pair_store_carries_counters(self, tmp_path):
        miner = LiveMiner(str(tmp_path / "live"), "implication", "1/2")
        miner.submit(1, make_rows(50, 8, seed=9))
        store = miner.export_pair_store()
        assert len(store) == len(miner._tracked)
        # Every exported budget/miss pair re-derives from the state.
        for owner, cand, misses in zip(
            store.owners.tolist(), store.cands.tolist(),
            store.misses.tolist(),
        ):
            pair = (min(owner, cand), max(owner, cand))
            hits = miner._tracked[pair]
            assert misses == miner._ones[owner] - hits


# ----------------------------------------------------------------------
# Crash-point enumeration: kill at every storage op, recovery exact.
# ----------------------------------------------------------------------


def _crash_workload(tmp_path, task, threshold, batches, oracle_rules):
    """run/recover callables for :func:`enumerate_crash_points`.

    Each enumeration run ingests into a *fresh* directory (so the
    crash can land during any append, replay or snapshot op); the
    recovery reopens the same directory and re-submits every batch
    like a retrying client — the watermark dedup must absorb the
    overlap.
    """
    state = {"generation": 0}

    def ingest(miner):
        for seq, batch in enumerate(batches, 1):
            if seq > miner.log.watermark:
                miner.submit(seq, batch)
        return canon(miner.rules())

    def run(storage):
        state["generation"] += 1
        root = str(tmp_path / f"gen{state['generation']}")
        miner = LiveMiner(
            root, task, threshold, storage=storage, snapshot_every=2
        )
        return ingest(miner)

    def recover(storage):
        root = str(tmp_path / f"gen{state['generation']}")
        miner = LiveMiner(
            root, task, threshold, storage=storage, snapshot_every=2
        )
        return ingest(miner)

    return run, recover, canon(oracle_rules)


class TestCrashPoints:
    @pytest.mark.parametrize("task,threshold", PARITY_CASES[:2])
    def test_bounded_sweep(self, tmp_path, task, threshold):
        rows = make_rows(60, 8, seed=11)
        batches = random_splits(rows, seed=11, n_batches=4)
        oracle = repro.mine(rows, task=task, threshold=threshold)
        run, recover, expected = _crash_workload(
            tmp_path, task, threshold, batches, oracle.rules
        )
        report = enumerate_crash_points(
            run, recover=recover, expected=expected, max_points=24
        )
        assert report.failures == [], report.describe_failures()

    @pytest.mark.slow
    @pytest.mark.parametrize("task,threshold", PARITY_CASES)
    def test_full_sweep(self, tmp_path, task, threshold):
        rows = make_rows(80, 10, seed=13)
        batches = random_splits(rows, seed=13, n_batches=5)
        oracle = repro.mine(rows, task=task, threshold=threshold)
        run, recover, expected = _crash_workload(
            tmp_path, task, threshold, batches, oracle.rules
        )
        report = enumerate_crash_points(
            run, recover=recover, expected=expected
        )
        assert report.total_ops > 20
        assert report.failures == [], report.describe_failures()

    def test_crash_between_commit_and_apply_replays(self, tmp_path):
        """The WAL-committed-but-unapplied window loses nothing."""
        root = str(tmp_path / "live")
        rows = make_rows(40, 8, seed=15)
        miner = LiveMiner(root, "implication", "2/3")
        miner.submit(1, rows[:20])
        # Commit without applying — then "die".
        miner.commit(2, rows[20:])
        assert miner.applied_seq == 1
        recovered = LiveMiner(root, "implication", "2/3")
        assert recovered.applied_seq == 2
        oracle = repro.mine(rows, task="implication", threshold="2/3")
        assert recovered.rules() == oracle.rules


# ----------------------------------------------------------------------
# The programmatic RuleDiff API (satellite).
# ----------------------------------------------------------------------


class TestRuleDiffAPI:
    def _sets(self):
        before = repro.mine(
            [["a", "b"], ["a", "b"], ["a"], ["c", "d"], ["c", "d"]],
            task="implication", threshold="2/3",
        ).rules
        after = repro.mine(
            [["a", "b"], ["a", "b"], ["a"], ["a"], ["b", "e"],
             ["c", "d"], ["c", "d"]],
            task="implication", threshold="2/3",
        ).rules
        return before, after

    def test_entries_stable_order(self):
        before, after = self._sets()
        diff = diff_rules(before, after)
        entries = diff.entries()
        assert entries == diff.entries()  # deterministic
        assert [e.pair for e in entries] == sorted(
            e.pair for e in entries
        )
        assert list(diff) == entries

    def test_entry_kinds_partition_the_diff(self):
        before, after = self._sets()
        diff = diff_rules(before, after)
        kinds = {}
        for entry in diff.entries():
            kinds.setdefault(entry.kind, []).append(entry)
            if entry.kind == "added":
                assert entry.before is None and entry.after is not None
            elif entry.kind == "removed":
                assert entry.before is not None and entry.after is None
            else:
                assert entry.before is not None and entry.after is not None
        assert len(kinds.get("added", ())) == len(diff.added)
        assert len(kinds.get("removed", ())) == len(diff.removed)
        assert len(kinds.get("changed", ())) == len(diff.changed)

    def test_to_events_json_ready(self):
        before, after = self._sets()
        events = diff_rules(before, after).to_events()
        text = json.dumps(events)  # must serialize
        assert json.loads(text) == events
        for event in events:
            assert set(event) == {"kind", "pair", "before", "after"}

    def test_empty_diff_has_no_entries(self):
        before, _ = self._sets()
        diff = diff_rules(before, before)
        assert diff.is_empty
        assert diff.entries() == []

    def test_diff_entry_frozen(self):
        entry = DiffEntry("added", (0, 1), None, None)
        with pytest.raises(AttributeError):
            entry.kind = "removed"
