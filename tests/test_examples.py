"""Every example script must run clean end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "web_similarity.py",
        "news_topic_rules.py",
        "dictionary_synonyms.py",
        "access_log_insights.py",
        "streaming_two_pass.py",
        "custom_policy.py",
    } <= set(EXAMPLES)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print something"


def test_quickstart_output_mentions_rules():
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "->" in completed.stdout
    assert "~" in completed.stdout
