"""A-priori baselines (repro.baselines.apriori)."""

from fractions import Fraction

import pytest

from repro.baselines.apriori import (
    apriori_frequent_itemsets,
    apriori_pair_rules,
    apriori_pair_similarity,
    association_rules_from_itemsets,
)
from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


class TestPairRules:
    def test_without_support_pruning_matches_oracle(self):
        for seed in range(10):
            matrix = random_binary_matrix(seed)
            got = apriori_pair_rules(matrix, 0.7).rules.pairs()
            want = implication_rules_bruteforce(matrix, 0.7).pairs()
            assert got == want, seed

    def test_support_pruning_loses_low_support_rules(self):
        """The paper's core criticism: a-priori discards low-support
        antecedents that DMC keeps."""
        rows = [[0, 1]] * 2 + [[2, 3]] * 20
        matrix = BinaryMatrix(rows, n_columns=4)
        truth = implication_rules_bruteforce(matrix, 1).pairs()
        pruned = apriori_pair_rules(
            matrix, 1, minsup_count=10
        ).rules.pairs()
        assert (0, 1) in truth
        assert (0, 1) not in pruned
        assert (2, 3) in pruned

    def test_maxsup_prunes_dense_columns(self):
        rows = [[0, 1]] * 10 + [[0]] * 10
        matrix = BinaryMatrix(rows, n_columns=2)
        result = apriori_pair_rules(matrix, 0.5, maxsup_count=15)
        assert 0 not in result.frequent_columns  # ones(0) = 20

    def test_counter_model_is_triangular(self):
        matrix = BinaryMatrix([[0, 1, 2]] * 5, n_columns=3)
        result = apriori_pair_rules(matrix, 0.5, minsup_count=1)
        assert result.counters_used == 3  # 3*(3-1)/2

    def test_pair_support_framework(self):
        rows = [[0, 1]] * 2 + [[0]] * 2 + [[1]] * 10
        matrix = BinaryMatrix(rows, n_columns=2)
        # conf(0=>1) = 1/2; pair support 2 < 3.
        loose = apriori_pair_rules(matrix, 0.5, minsup_count=3)
        strict = apriori_pair_rules(
            matrix, 0.5, minsup_count=3, require_pair_support=True
        )
        assert (0, 1) in loose.rules.pairs()
        assert (0, 1) not in strict.rules.pairs()


class TestPairSimilarity:
    def test_matches_oracle(self):
        for seed in range(8):
            matrix = random_binary_matrix(seed)
            got = apriori_pair_similarity(matrix, 0.5).rules.pairs()
            want = similarity_rules_bruteforce(matrix, 0.5).pairs()
            assert got == want, seed


class TestFrequentItemsets:
    @pytest.fixture
    def market(self):
        return BinaryMatrix(
            [
                [0, 1, 2],
                [0, 1],
                [0, 1, 2],
                [1, 2],
                [0, 2],
            ],
            n_columns=3,
        )

    def test_singletons(self, market):
        supports = apriori_frequent_itemsets(market, minsup_count=4)
        assert supports[frozenset([0])] == 4
        assert supports[frozenset([1])] == 4
        assert supports[frozenset([2])] == 4

    def test_pairs_and_triples(self, market):
        supports = apriori_frequent_itemsets(market, minsup_count=2)
        assert supports[frozenset([0, 1])] == 3
        assert supports[frozenset([0, 1, 2])] == 2

    def test_minsup_filters_levels(self, market):
        supports = apriori_frequent_itemsets(market, minsup_count=3)
        assert frozenset([0, 1, 2]) not in supports
        assert frozenset([0, 1]) in supports

    def test_max_size_cap(self, market):
        supports = apriori_frequent_itemsets(
            market, minsup_count=1, max_size=2
        )
        assert all(len(itemset) <= 2 for itemset in supports)

    def test_supports_match_direct_count(self, market):
        supports = apriori_frequent_itemsets(market, minsup_count=1)
        for itemset, support in supports.items():
            direct = sum(
                1
                for _, row in market.iter_rows()
                if itemset <= set(row)
            )
            assert support == direct

    def test_invalid_minsup(self, market):
        with pytest.raises(ValueError):
            apriori_frequent_itemsets(market, minsup_count=0)

    def test_downward_closure(self):
        matrix = random_binary_matrix(21)
        supports = apriori_frequent_itemsets(matrix, minsup_count=2)
        for itemset in supports:
            for item in itemset:
                if len(itemset) > 1:
                    assert itemset - {item} in supports


class TestAssociationRules:
    def test_multi_attribute_rules(self):
        matrix = BinaryMatrix(
            [[0, 1, 2]] * 4 + [[0, 1]] * 1, n_columns=3
        )
        supports = apriori_frequent_itemsets(matrix, minsup_count=2)
        rules = association_rules_from_itemsets(supports, 0.8)
        found = {
            (tuple(sorted(x)), tuple(sorted(y))) for x, y, _, _ in rules
        }
        # {0,1} => {2} has confidence 4/5.
        assert ((0, 1), (2,)) in found

    def test_confidence_threshold_applied(self):
        matrix = BinaryMatrix([[0, 1]] * 1 + [[0]] * 3, n_columns=2)
        supports = apriori_frequent_itemsets(matrix, minsup_count=1)
        rules = association_rules_from_itemsets(supports, 0.9)
        antecedents = {tuple(sorted(x)) for x, _, _, _ in rules}
        assert (0,) not in antecedents  # conf({0}=>{1}) = 1/4

    def test_rule_stats(self):
        matrix = BinaryMatrix([[0, 1]] * 3, n_columns=2)
        supports = apriori_frequent_itemsets(matrix, minsup_count=1)
        rules = association_rules_from_itemsets(supports, Fraction(1))
        for _, _, support_xy, support_x in rules:
            assert support_xy == support_x == 3
