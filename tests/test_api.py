"""The repro.mine() facade and MiningConfig."""

import pytest

import repro
from repro.api import MiningConfig, MiningResult, mine
from repro.core.dmc_imp import find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.partitioned import (
    find_implication_rules_partitioned,
    find_similarity_rules_partitioned,
)
from repro.datasets.registry import load_dataset
from repro.matrix.stream import (
    MatrixSource,
    stream_implication_rules,
    stream_similarity_rules,
)
from repro.mining.export import rules_to_json
from repro.runtime.guards import mine_with_memory_budget


@pytest.fixture(scope="module")
def matrix():
    return load_dataset("News", scale=0.1, seed=5)


class TestConfig:
    def test_requires_a_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            MiningConfig(task="implication")

    def test_rejects_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            MiningConfig(task="clustering", threshold=0.9)

    def test_partitioned_and_budget_conflict(self):
        with pytest.raises(ValueError, match="mutually"):
            MiningConfig(
                threshold=0.9, partitioned=True, memory_budget=1024
            )

    def test_minconf_and_minsim_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            mine(load_dataset("News", scale=0.05), minconf=0.9, minsim=0.8)

    def test_alias_contradicting_task(self, matrix):
        with pytest.raises(TypeError, match="contradicts"):
            mine(matrix, task="similarity", minconf=0.9)

    def test_config_object_with_overrides(self, matrix):
        config = MiningConfig(task="implication", threshold=0.95)
        result = mine(matrix, config=config, minconf=0.9)
        assert result.rules.pairs() == find_implication_rules(
            matrix, 0.9
        ).pairs()


class TestEquivalence:
    """mine() must reproduce every legacy entry point exactly."""

    def test_matches_find_implication_rules(self, matrix):
        result = mine(matrix, minconf=0.9)
        legacy = find_implication_rules(matrix, 0.9)
        assert result.engine == "dmc"
        assert rules_to_json(result.rules) == rules_to_json(legacy)

    def test_matches_find_similarity_rules(self, matrix):
        result = mine(matrix, minsim=0.6)
        legacy = find_similarity_rules(matrix, 0.6)
        assert result.engine == "dmc"
        assert rules_to_json(result.rules) == rules_to_json(legacy)

    def test_matches_partitioned_implication(self, matrix):
        result = mine(matrix, minconf=0.9, engine="partitioned", n_partitions=3)
        legacy = find_implication_rules_partitioned(
            matrix, 0.9, n_partitions=3
        )
        assert result.engine == "partitioned"
        assert rules_to_json(result.rules) == rules_to_json(legacy)
        assert len(result.stats.partition_candidates) == 3

    def test_matches_partitioned_similarity(self, matrix):
        result = mine(matrix, minsim=0.6, engine="partitioned")
        legacy = find_similarity_rules_partitioned(matrix, 0.6)
        assert result.engine == "partitioned"
        assert rules_to_json(result.rules) == rules_to_json(legacy)

    def test_matches_stream_implication(self, matrix):
        result = mine(MatrixSource(matrix), minconf=0.9)
        legacy = stream_implication_rules(MatrixSource(matrix), 0.9)
        assert result.engine == "stream"
        assert rules_to_json(result.rules) == rules_to_json(legacy)

    def test_matches_stream_similarity(self, matrix):
        result = mine(MatrixSource(matrix), minsim=0.6)
        legacy = stream_similarity_rules(MatrixSource(matrix), 0.6)
        assert result.engine == "stream"
        assert rules_to_json(result.rules) == rules_to_json(legacy)

    def test_matches_memory_budget_wrapper(self, matrix):
        result = mine(matrix, minconf=0.9, memory_budget=64, n_partitions=2)
        legacy, engine = mine_with_memory_budget(
            matrix, 0.9, budget_bytes=64, n_partitions=2
        )
        assert result.engine == engine == "partitioned"
        assert rules_to_json(result.rules) == rules_to_json(legacy)

    def test_file_path_input(self, matrix, tmp_path):
        from repro.matrix.binary_matrix import BinaryMatrix
        from repro.matrix.io import save_transactions

        # Streaming sources carry numeric ids only; drop the vocabulary.
        numeric = BinaryMatrix(
            [row for _, row in matrix.iter_rows()],
            n_columns=matrix.n_columns,
        )
        path = str(tmp_path / "data.txt")
        save_transactions(numeric, path)
        result = mine(path, minconf=0.9)
        assert result.engine == "stream"
        assert result.rules.pairs() == find_implication_rules(
            matrix, 0.9
        ).pairs()

    def test_transactions_input(self):
        transactions = [["a", "b"], ["a", "b", "c"], ["c"], ["a", "b"]]
        result = mine(transactions, minconf=0.9)
        assert result.vocabulary is not None
        formatted = {
            rule.format(result.vocabulary) for rule in result.rules
        }
        assert any("a" in text for text in formatted)


class TestResult:
    def test_result_shape(self, matrix):
        observer = repro.RunObserver()
        result = mine(matrix, minconf=0.9, observer=observer)
        assert isinstance(result, MiningResult)
        assert len(result) == len(result.rules)
        assert list(iter(result)) == list(iter(result.rules))
        assert result.trace is not None
        assert result.trace["spans"]
        assert result.stats.columns_total == matrix.n_columns

    def test_no_observer_means_no_trace(self, matrix):
        result = mine(matrix, minconf=0.95)
        assert result.trace is None

    def test_observer_finish_folds_metrics(self, matrix):
        observer = repro.RunObserver()
        result = mine(matrix, minconf=0.9, observer=observer)
        assert observer.metrics.value("dmc_columns_total") == (
            matrix.n_columns
        )
        emitted_hundred = observer.metrics.value(
            "dmc_rules_emitted_total", scan="100%-rules"
        )
        emitted_partial = observer.metrics.value(
            "dmc_rules_emitted_total", scan="partial"
        )
        # The <100% scan may re-emit 100% rules the RuleSet dedupes, so
        # emissions bound the distinct rule count from above.
        assert emitted_hundred + emitted_partial >= len(result.rules)
        assert emitted_hundred == (
            result.stats.hundred_percent_scan.rules_emitted
        )
        assert emitted_partial == result.stats.partial_scan.rules_emitted

    def test_streaming_rejects_memory_budget(self, matrix):
        with pytest.raises(ValueError, match="in-memory"):
            mine(MatrixSource(matrix), minconf=0.9, memory_budget=1024)

    def test_unsupported_input_type(self):
        with pytest.raises(TypeError, match="expects"):
            mine(42, minconf=0.9)


class TestDeprecations:
    def test_candidate_log_kwarg_removed(self, matrix):
        with pytest.raises(TypeError, match="candidate_log"):
            find_implication_rules_partitioned(
                matrix, 0.9, n_partitions=2, candidate_log=[]
            )

    def test_partitioned_flag_warns_but_works(self, matrix):
        with pytest.warns(DeprecationWarning, match="engine='partitioned'"):
            result = mine(matrix, minconf=0.9, partitioned=True)
        assert result.engine == "partitioned"
        assert result.rules.pairs() == find_implication_rules(
            matrix, 0.9
        ).pairs()

    def test_explicit_engine_does_not_warn(self, matrix):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = mine(matrix, minconf=0.9, engine="partitioned")
        assert result.engine == "partitioned"
