"""Divide-and-conquer DMC (repro.core.partitioned, Section 7)."""

import pytest

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.partitioned import (
    _partition_rows,
    find_implication_rules_partitioned,
    find_similarity_rules_partitioned,
)
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


class TestPartitioning:
    def test_round_robin_covers_all_rows(self):
        matrix = BinaryMatrix([[0]] * 10, n_columns=1)
        chunks = _partition_rows(matrix, 3)
        assert sorted(r for chunk in chunks for r in chunk) == list(
            range(10)
        )

    def test_more_partitions_than_rows(self):
        matrix = BinaryMatrix([[0]] * 2, n_columns=1)
        chunks = _partition_rows(matrix, 5)
        assert len(chunks) == 2  # empty chunks dropped

    def test_invalid_partition_count(self):
        matrix = BinaryMatrix([[0]], n_columns=1)
        with pytest.raises(ValueError):
            _partition_rows(matrix, 0)


class TestImplication:
    def test_matches_oracle(self):
        for seed in range(12):
            matrix = random_binary_matrix(seed)
            for n_partitions in (1, 2, 4):
                got = find_implication_rules_partitioned(
                    matrix, 0.7, n_partitions=n_partitions
                ).pairs()
                want = implication_rules_bruteforce(matrix, 0.7).pairs()
                assert got == want, (seed, n_partitions)

    def test_direction_flip_across_partitions(self):
        """A pair whose canonical direction differs between a partition
        and the full data must still be found (the reason local mining
        drops the canonical restriction)."""
        # Round-robin with 2 partitions: even rows / odd rows.
        # Globally ones(c0)=4 > ones(c1)=3, but on the even partition
        # c0 is the sparser column.
        rows = [
            [0, 1],  # even
            [0, 1],  # odd
            [1],     # even
            [0],     # odd
            [0],     # even -> even partition: c0:3, c1:2
        ]
        matrix = BinaryMatrix(rows, n_columns=2)
        got = find_implication_rules_partitioned(
            matrix, 0.6, n_partitions=2
        ).pairs()
        want = implication_rules_bruteforce(matrix, 0.6).pairs()
        assert got == want

    def test_candidate_log(self):
        matrix = random_binary_matrix(1)
        log = []
        with pytest.warns(DeprecationWarning):
            find_implication_rules_partitioned(
                matrix, 0.8, n_partitions=3, candidate_log=log
            )
        assert len(log) == 3


class TestSimilarity:
    def test_matches_oracle(self):
        for seed in range(12):
            matrix = random_binary_matrix(seed)
            for n_partitions in (1, 3):
                got = find_similarity_rules_partitioned(
                    matrix, 0.5, n_partitions=n_partitions
                ).pairs()
                want = similarity_rules_bruteforce(matrix, 0.5).pairs()
                assert got == want, (seed, n_partitions)

    def test_rule_statistics_are_global(self):
        matrix = random_binary_matrix(2)
        rules = find_similarity_rules_partitioned(
            matrix, 0.5, n_partitions=3
        )
        sets = matrix.column_sets()
        for rule in rules:
            assert rule.intersection == len(
                sets[rule.first] & sets[rule.second]
            )
