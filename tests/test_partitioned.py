"""Divide-and-conquer DMC (repro.core.partitioned, Section 7)."""

import pytest

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.partitioned import (
    _partition_rows,
    find_implication_rules_partitioned,
    find_similarity_rules_partitioned,
)
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


class TestPartitioning:
    def test_round_robin_covers_all_rows(self):
        matrix = BinaryMatrix([[0]] * 10, n_columns=1)
        chunks = _partition_rows(matrix, 3)
        assert sorted(r for chunk in chunks for r in chunk) == list(
            range(10)
        )

    def test_more_partitions_than_rows(self):
        matrix = BinaryMatrix([[0]] * 2, n_columns=1)
        chunks = _partition_rows(matrix, 5)
        assert len(chunks) == 2  # empty chunks dropped

    def test_invalid_partition_count(self):
        matrix = BinaryMatrix([[0]], n_columns=1)
        with pytest.raises(ValueError):
            _partition_rows(matrix, 0)

    def test_every_row_exactly_once(self):
        """No row is lost or duplicated, for any partition count."""
        for n_rows in (1, 2, 7, 10, 23):
            matrix = BinaryMatrix([[0]] * n_rows, n_columns=1)
            for n_partitions in (1, 2, 3, 5, 8, 40):
                chunks = _partition_rows(matrix, n_partitions)
                flat = [r for chunk in chunks for r in chunk]
                assert sorted(flat) == list(range(n_rows)), (
                    n_rows, n_partitions,
                )

    def test_partition_sizes_balanced_within_one(self):
        """Round-robin keeps non-empty chunk sizes within +-1."""
        for n_rows in (5, 9, 16, 31):
            matrix = BinaryMatrix([[0]] * n_rows, n_columns=1)
            for n_partitions in (2, 3, 4, 7):
                sizes = [
                    len(chunk)
                    for chunk in _partition_rows(matrix, n_partitions)
                ]
                assert max(sizes) - min(sizes) <= 1, (n_rows, n_partitions)

    def test_empty_matrix_mines_no_rules(self):
        matrix = BinaryMatrix([], n_columns=3)
        rules = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=4
        )
        assert len(rules) == 0


class TestImplication:
    def test_matches_oracle(self):
        for seed in range(12):
            matrix = random_binary_matrix(seed)
            for n_partitions in (1, 2, 4):
                got = find_implication_rules_partitioned(
                    matrix, 0.7, n_partitions=n_partitions
                ).pairs()
                want = implication_rules_bruteforce(matrix, 0.7).pairs()
                assert got == want, (seed, n_partitions)

    def test_direction_flip_across_partitions(self):
        """A pair whose canonical direction differs between a partition
        and the full data must still be found (the reason local mining
        drops the canonical restriction)."""
        # Round-robin with 2 partitions: even rows / odd rows.
        # Globally ones(c0)=4 > ones(c1)=3, but on the even partition
        # c0 is the sparser column.
        rows = [
            [0, 1],  # even
            [0, 1],  # odd
            [1],     # even
            [0],     # odd
            [0],     # even -> even partition: c0:3, c1:2
        ]
        matrix = BinaryMatrix(rows, n_columns=2)
        got = find_implication_rules_partitioned(
            matrix, 0.6, n_partitions=2
        ).pairs()
        want = implication_rules_bruteforce(matrix, 0.6).pairs()
        assert got == want

    def test_partition_candidate_counts_on_stats(self):
        from repro.core.stats import PipelineStats

        matrix = random_binary_matrix(4)
        stats = PipelineStats()
        counted = find_implication_rules_partitioned(
            matrix, 0.8, n_partitions=3, stats=stats
        ).pairs()
        assert len(stats.partition_candidates) == 3
        assert all(count >= 0 for count in stats.partition_candidates)
        plain = find_implication_rules_partitioned(
            matrix, 0.8, n_partitions=3
        ).pairs()
        assert counted == plain


class TestSimilarity:
    def test_matches_oracle(self):
        for seed in range(12):
            matrix = random_binary_matrix(seed)
            for n_partitions in (1, 3):
                got = find_similarity_rules_partitioned(
                    matrix, 0.5, n_partitions=n_partitions
                ).pairs()
                want = similarity_rules_bruteforce(matrix, 0.5).pairs()
                assert got == want, (seed, n_partitions)

    def test_rule_statistics_are_global(self):
        matrix = random_binary_matrix(2)
        rules = find_similarity_rules_partitioned(
            matrix, 0.5, n_partitions=3
        )
        sets = matrix.column_sets()
        for rule in rules:
            assert rule.intersection == len(
                sets[rule.first] & sets[rule.second]
            )

    def test_vector_scan_engine_matches_serial(self):
        for seed in range(4):
            matrix = random_binary_matrix(seed)
            serial = find_similarity_rules_partitioned(
                matrix, 0.5, n_partitions=3
            ).pairs()
            vector = find_similarity_rules_partitioned(
                matrix, 0.5, n_partitions=3, scan_engine="vector"
            ).pairs()
            assert vector == serial, seed
