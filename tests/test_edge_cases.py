"""Adversarial and regression cases for the scan engine."""

from fractions import Fraction

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.dmc_imp import PruningOptions, find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.miss_counting import miss_counting_scan
from repro.core.policies import SimilarityPolicy
from repro.core.stats import ScanStats
from repro.matrix.binary_matrix import BinaryMatrix


class TestPaperExample51:
    """Figure 5 / Example 5.1 reconstructed: c1 has 4 ones, c2 has 5,
    one hit before r4, and maximum-hits pruning deletes the pair at r4
    even though both columns are 1 there."""

    def _matrix(self):
        rows = [
            (1,),      # r1 = {c2}
            (0, 1),    # r2 = {c1, c2} — the pair's first hit
            (1,),      # r3 = {c2}
            (0, 1),    # r4 = {c1, c2} — pruned here despite the hit
            (0,),      # r5 = {c1}
            (0, 1),    # r6 = {c1, c2}
        ]
        return BinaryMatrix(rows, n_columns=2)

    def test_pair_is_truly_invalid(self):
        matrix = self._matrix()
        truth = similarity_rules_bruteforce(matrix, 0.75)
        assert truth.pairs() == set()

    def test_max_hits_prunes_at_r4(self):
        matrix = self._matrix()
        policy = SimilarityPolicy(matrix.column_ones(), 0.75)
        stats = ScanStats()
        rules = miss_counting_scan(
            matrix, policy, order=list(range(6)), stats=stats
        )
        assert len(rules) == 0
        # Candidate exists after r2/r3, gone after r4 (a hit row!).
        assert stats.candidate_history == [0, 1, 1, 0, 0, 0]

    def test_without_max_hits_pruning_deletion_waits_for_a_miss(self):
        matrix = self._matrix()
        policy = SimilarityPolicy(
            matrix.column_ones(), 0.75, use_max_hits_pruning=False
        )
        stats = ScanStats()
        rules = miss_counting_scan(
            matrix, policy, order=list(range(6)), stats=stats
        )
        assert len(rules) == 0
        # The pair survives r4 and dies at the r5 miss instead.
        assert stats.candidate_history == [0, 1, 1, 1, 0, 0]


class TestMaxHitsBoundaryRegression:
    """Regression: the max-hits check must treat the current row as
    consumed.  A pair sitting exactly on its miss budget used to be
    pruned because the row being processed was double-counted (once in
    the incremented miss count, once as remaining opportunity)."""

    def _matrix(self):
        # Column 0: 7 ones; column 1: 8 ones; intersection 5 =>
        # similarity exactly 5/10 = minsim, misses == budget == 2.
        s0 = {0, 7, 11, 12, 14, 16, 17}
        s1 = {0, 4, 5, 7, 10, 12, 16, 17}
        rows = [
            [c for c, members in ((0, s0), (1, s1)) if r in members]
            for r in range(18)
        ]
        return BinaryMatrix(rows, n_columns=2)

    def test_boundary_pair_survives_both_orders(self):
        matrix = self._matrix()
        for reordering in (True, False):
            rules = find_similarity_rules(
                matrix,
                0.5,
                options=PruningOptions(row_reordering=reordering),
            )
            assert (0, 1) in rules.pairs(), reordering
            assert rules[(0, 1)].similarity == Fraction(1, 2)


class TestAdversarialMatrices:
    def test_all_ones_matrix(self):
        matrix = BinaryMatrix([[0, 1, 2]] * 4, n_columns=3)
        rules = find_implication_rules(matrix, 1)
        assert rules.pairs() == {(0, 1), (0, 2), (1, 2)}
        pairs = find_similarity_rules(matrix, 1)
        assert pairs.pairs() == {(0, 1), (0, 2), (1, 2)}

    def test_diagonal_matrix_has_no_rules(self):
        matrix = BinaryMatrix([[i] for i in range(5)], n_columns=5)
        assert len(find_implication_rules(matrix, 0.5)) == 0
        assert len(find_similarity_rules(matrix, 0.5)) == 0

    def test_duplicate_rows_scale_counts_not_rules(self):
        base = BinaryMatrix([[0, 1], [0], [1, 2]], n_columns=3)
        doubled = BinaryMatrix(
            [row for _, row in base.iter_rows() for _ in range(2)],
            n_columns=3,
        )
        for threshold in (1.0, 0.5):
            assert (
                find_implication_rules(base, threshold).pairs()
                == find_implication_rules(doubled, threshold).pairs()
            )

    def test_single_column(self):
        matrix = BinaryMatrix([[0], [0]], n_columns=1)
        assert len(find_implication_rules(matrix, 0.5)) == 0

    def test_very_low_threshold(self):
        matrix = BinaryMatrix(
            [[0, 1], [0], [1], [0, 2], [2, 1]], n_columns=3
        )
        threshold = Fraction(1, 12)
        got = find_implication_rules(matrix, threshold).pairs()
        want = implication_rules_bruteforce(matrix, threshold).pairs()
        assert got == want

    def test_wide_matrix_single_row(self):
        matrix = BinaryMatrix([list(range(40))], n_columns=40)
        rules = find_implication_rules(matrix, 1)
        assert len(rules) == 40 * 39 // 2

    def test_column_with_all_rows(self):
        # One column set in every row: every other column implies it.
        rows = [[0, 1 + (i % 3)] for i in range(9)]
        matrix = BinaryMatrix(rows, n_columns=4)
        rules = find_implication_rules(matrix, 1)
        assert {(1, 0), (2, 0), (3, 0)} <= rules.pairs()

    def test_threshold_exactly_one_over_n(self):
        # ones(0)=10 < ones(1)=21, so 0 => 1 is the canonical direction.
        matrix = BinaryMatrix(
            [[0, 1]] + [[0]] * 9 + [[1]] * 20, n_columns=2
        )
        # conf(0 => 1) = 1/10; threshold exactly 1/10 keeps it.
        rules = find_implication_rules(matrix, Fraction(1, 10))
        assert (0, 1) in rules.pairs()
        rules = find_implication_rules(matrix, Fraction(11, 100))
        assert (0, 1) not in rules.pairs()
