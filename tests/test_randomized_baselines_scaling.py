"""Cross-cutting behaviour of the randomized baselines.

The paper's Figure 6(i) rule — "plot K-Min where false negatives stay
under 10%" — presumes recall improves with sketch size.  These tests
pin that monotone behaviour (with fixed seeds) for every randomized
comparator, plus the shared guarantee that verification makes false
positives impossible at any parameter setting.
"""

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.baselines.kmin import kmin_implication_rules
from repro.baselines.minhash import minhash_similarity_rules
from repro.baselines.sampling import sampled_implication_rules
from repro.datasets.synthetic import (
    planted_rule_matrix,
    planted_similarity_matrix,
)


class TestRecallImprovesWithBudget:
    def test_kmin_recall_monotone_in_k(self):
        matrix = planted_rule_matrix(
            300, 15,
            rules=[(0, 1, 0.9), (2, 3, 0.88), (4, 5, 0.92)],
            antecedent_ones=40, seed=2,
        )
        truth = implication_rules_bruteforce(matrix, 0.85)
        rates = []
        for k in (4, 16, 64):
            result = kmin_implication_rules(matrix, 0.85, k=k, seed=0)
            rates.append(result.false_negative_rate(truth))
        assert rates[0] >= rates[-1]
        assert rates[-1] <= 0.1

    def test_minhash_recall_monotone_in_k(self):
        matrix = planted_similarity_matrix(
            200, 16,
            groups=[([0, 1], 0.85), ([2, 3], 0.82), ([4, 5], 0.9)],
            seed=3,
        )
        truth = similarity_rules_bruteforce(matrix, 0.8)
        misses = []
        for k in (8, 64, 256):
            result = minhash_similarity_rules(
                matrix, 0.8, k=k, seed=1
            )
            misses.append(len(result.false_negatives(truth)))
        assert misses[0] >= misses[-1]
        assert misses[-1] == 0

    def test_sampling_recall_monotone_in_fraction(self):
        matrix = planted_rule_matrix(
            400, 12, rules=[(0, 1, 0.9)], antecedent_ones=50, seed=4
        )
        truth = implication_rules_bruteforce(matrix, 0.85)
        misses = []
        for fraction in (0.1, 0.5, 1.0):
            result = sampled_implication_rules(
                matrix, 0.85, sample_fraction=fraction, margin=0.05,
                seed=5,
            )
            misses.append(len(result.false_negatives(truth)))
        assert misses[0] >= misses[-1]


class TestNoFalsePositivesAtAnySetting:
    def test_all_baselines_verified(self):
        matrix = planted_rule_matrix(
            150, 10, rules=[(0, 1, 0.9)], seed=6
        )
        truth_imp = implication_rules_bruteforce(matrix, 0.8)
        truth_sim = similarity_rules_bruteforce(matrix, 0.5)
        for k in (2, 8):
            assert (
                kmin_implication_rules(matrix, 0.8, k=k).rules.pairs()
                <= truth_imp.pairs()
            )
            assert (
                minhash_similarity_rules(matrix, 0.5, k=k).rules.pairs()
                <= truth_sim.pairs()
            )
        for fraction in (0.05, 0.5):
            assert (
                sampled_implication_rules(
                    matrix, 0.8, sample_fraction=fraction
                ).rules.pairs()
                <= truth_imp.pairs()
            )
