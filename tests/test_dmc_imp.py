"""The DMC-imp pipeline (repro.core.dmc_imp, Algorithm 4.2)."""

from fractions import Fraction

from repro.baselines.bruteforce import implication_rules_bruteforce
from repro.core.dmc_imp import PruningOptions, find_implication_rules
from repro.core.miss_counting import BitmapConfig
from repro.core.stats import PipelineStats
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import EXAMPLE31_RULES, random_binary_matrix


class TestPipelineCorrectness:
    def test_example31(self, example31):
        rules = find_implication_rules(example31, 0.8)
        assert rules.pairs() == EXAMPLE31_RULES

    def test_matches_oracle_across_thresholds(self):
        for seed in range(15):
            matrix = random_binary_matrix(seed)
            for threshold in (1.0, 0.9, 0.66, 0.4):
                got = find_implication_rules(matrix, threshold).pairs()
                want = implication_rules_bruteforce(
                    matrix, threshold
                ).pairs()
                assert got == want, (seed, threshold)

    def test_all_option_combinations_agree(self):
        matrix = random_binary_matrix(42)
        baseline = find_implication_rules(matrix, 0.7).pairs()
        for reordering in (True, False):
            for hundred in (True, False):
                for bitmap in (
                    None,
                    BitmapConfig(),
                    BitmapConfig(switch_rows=10**9, memory_budget_bytes=0),
                ):
                    options = PruningOptions(
                        row_reordering=reordering,
                        hundred_percent_pass=hundred,
                        bitmap=bitmap,
                    )
                    got = find_implication_rules(
                        matrix, 0.7, options=options
                    ).pairs()
                    assert got == baseline, options

    def test_rule_statistics_are_exact(self):
        matrix = random_binary_matrix(5)
        rules = find_implication_rules(matrix, 0.5)
        sets = matrix.column_sets()
        for rule in rules:
            assert rule.ones == len(sets[rule.antecedent])
            assert rule.hits == len(
                sets[rule.antecedent] & sets[rule.consequent]
            )

    def test_confidences_meet_threshold(self):
        matrix = random_binary_matrix(6)
        rules = find_implication_rules(matrix, 0.75)
        assert all(
            rule.confidence >= Fraction(3, 4) for rule in rules
        )

    def test_monotone_in_threshold(self):
        matrix = random_binary_matrix(7)
        low = find_implication_rules(matrix, 0.5).pairs()
        high = find_implication_rules(matrix, 0.9).pairs()
        assert high <= low


class TestHundredPercentShortCircuit:
    def test_minconf_one_runs_single_pass(self, example31):
        stats = PipelineStats()
        rules = find_implication_rules(example31, 1, stats=stats)
        assert "<100%-rules" not in stats.breakdown()
        assert all(rule.confidence == 1 for rule in rules)

    def test_minconf_one_matches_oracle(self):
        for seed in range(10):
            matrix = random_binary_matrix(seed)
            got = find_implication_rules(matrix, 1).pairs()
            want = implication_rules_bruteforce(matrix, 1).pairs()
            assert got == want


class TestColumnRemoval:
    def test_removed_columns_counted(self):
        # Columns with a zero miss budget at 90% (ones <= 9) are
        # removed before the <100% pass.
        matrix = BinaryMatrix(
            [[0, 1] for _ in range(3)] + [[1, 2] for _ in range(20)],
            n_columns=3,
        )
        stats = PipelineStats()
        find_implication_rules(matrix, 0.9, stats=stats)
        assert stats.columns_removed == 1  # column 0 has only 3 ones

    def test_boundary_column_with_one_miss_budget_is_kept(self):
        """The paper's '<= 1/(1-minconf)' cutoff would drop a column of
        exactly 10 ones at 90% even though it still allows one miss;
        the exact cutoff keeps it and its 9/10 rule is found."""
        rows = [[0, 1]] * 9 + [[0]] + [[1]] * 15
        matrix = BinaryMatrix(rows, n_columns=2)
        rules = find_implication_rules(matrix, 0.9)
        assert (0, 1) in rules.pairs()
        assert rules[(0, 1)].confidence == Fraction(9, 10)


class TestPipelineStats:
    def test_phases_recorded(self, example31):
        stats = PipelineStats()
        find_implication_rules(example31, 0.8, stats=stats)
        breakdown = stats.breakdown()
        assert set(breakdown) == {"pre-scan", "100%-rules", "<100%-rules"}
        assert stats.total_seconds > 0

    def test_combined_pass_when_disabled(self, example31):
        stats = PipelineStats()
        find_implication_rules(
            example31,
            0.8,
            options=PruningOptions(hundred_percent_pass=False),
            stats=stats,
        )
        assert "combined" in stats.breakdown()

    def test_rule_counts_split(self, example31):
        stats = PipelineStats()
        rules = find_implication_rules(example31, 0.8, stats=stats)
        assert (
            stats.rules_hundred_percent + stats.rules_partial == len(rules)
        )

    def test_peak_bytes_spans_both_passes(self, example31):
        stats = PipelineStats()
        find_implication_rules(example31, 0.8, stats=stats)
        assert stats.peak_bytes == max(
            stats.hundred_percent_scan.peak_bytes,
            stats.partial_scan.peak_bytes,
        )
