"""Markdown report generation (repro.experiments.report)."""

import pytest

from repro.experiments.harness import EXPERIMENTS
from repro.experiments.report import PAPER_NOTES, write_report


class TestWriteReport:
    def test_writes_selected_experiments(self, tmp_path):
        path = str(tmp_path / "report.md")
        count = write_report(
            path, scale=0.2, experiment_ids=["table1", "fig4"]
        )
        assert count == 2
        text = open(path, encoding="utf-8").read()
        assert "## table1" in text
        assert "## fig4" in text
        assert "## fig7" not in text

    def test_header_records_provenance(self, tmp_path):
        path = str(tmp_path / "report.md")
        write_report(path, scale=0.2, seed=7, experiment_ids=["table1"])
        text = open(path, encoding="utf-8").read()
        assert "scale 0.2" in text
        assert "seed 7" in text

    def test_paper_notes_included(self, tmp_path):
        path = str(tmp_path / "report.md")
        write_report(path, scale=0.2, experiment_ids=["table1"])
        text = open(path, encoding="utf-8").read()
        assert "Paper sizes range" in text

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            write_report(
                str(tmp_path / "x.md"), experiment_ids=["nope"]
            )

    def test_every_experiment_has_a_paper_note(self):
        assert set(PAPER_NOTES) == set(EXPERIMENTS)


class TestReportCli:
    def test_report_command(self, capsys, tmp_path):
        from repro.cli import main

        out = str(tmp_path / "r.md")
        code = main(
            ["report", "--out", out, "--scale", "0.2",
             "--only", "table1"]
        )
        assert code == 0
        assert "wrote 1 experiments" in capsys.readouterr().out

    def test_report_command_unknown_id(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            ["report", "--out", str(tmp_path / "r.md"),
             "--only", "bogus"]
        )
        assert code == 2
