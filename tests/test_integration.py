"""End-to-end integration: every registry data set, every miner,
checked against the oracle at small scale.

These are the closest tests to "running the paper": realistic (if
scaled) data through the full pipelines, with exactness verified.
"""

import pytest

from repro.baselines.apriori import apriori_pair_rules
from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.dmc_imp import PruningOptions, find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.miss_counting import BitmapConfig
from repro.core.partitioned import (
    find_implication_rules_partitioned,
    find_similarity_rules_partitioned,
)
from repro.datasets.registry import DATASETS
from repro.matrix.stream import MatrixSource, stream_implication_rules
from repro.mining.verify import (
    verify_implication_rules,
    verify_similarity_rules,
)

SCALE = 0.12
OPTIONS = PruningOptions(
    bitmap=BitmapConfig(switch_rows=32, memory_budget_bytes=4096)
)


@pytest.fixture(scope="module")
def matrices():
    return {
        name: spec.build(scale=SCALE, seed=3)
        for name, spec in DATASETS.items()
    }


@pytest.mark.parametrize("name", list(DATASETS))
@pytest.mark.parametrize("threshold", [0.9, 0.75])
def test_dmc_imp_exact_on_every_dataset(matrices, name, threshold):
    matrix = matrices[name]
    got = find_implication_rules(matrix, threshold, options=OPTIONS)
    want = implication_rules_bruteforce(matrix, threshold)
    assert got.pairs() == want.pairs()
    assert verify_implication_rules(matrix, got, threshold) == []


@pytest.mark.parametrize("name", list(DATASETS))
@pytest.mark.parametrize("threshold", [0.9, 0.7])
def test_dmc_sim_exact_on_every_dataset(matrices, name, threshold):
    matrix = matrices[name]
    got = find_similarity_rules(matrix, threshold, options=OPTIONS)
    want = similarity_rules_bruteforce(matrix, threshold)
    assert got.pairs() == want.pairs()
    assert verify_similarity_rules(matrix, got, threshold) == []


@pytest.mark.parametrize("name", ["WlogP", "NewsP", "dicD"])
def test_partitioned_matches_pipeline(matrices, name):
    matrix = matrices[name]
    pipeline = find_implication_rules(matrix, 0.8, options=OPTIONS)
    partitioned = find_implication_rules_partitioned(
        matrix, 0.8, n_partitions=3
    )
    assert partitioned.pairs() == pipeline.pairs()
    sim_pipeline = find_similarity_rules(matrix, 0.7, options=OPTIONS)
    sim_partitioned = find_similarity_rules_partitioned(
        matrix, 0.7, n_partitions=3
    )
    assert sim_partitioned.pairs() == sim_pipeline.pairs()


@pytest.mark.parametrize("name", ["Wlog", "News"])
def test_streaming_matches_pipeline(matrices, name):
    matrix = matrices[name]
    streamed = stream_implication_rules(MatrixSource(matrix), 0.85)
    pipeline = find_implication_rules(matrix, 0.85, options=OPTIONS)
    assert streamed.pairs() == pipeline.pairs()


def test_parallel_workers_match_serial(matrices):
    matrix = matrices["dicD"]
    serial = find_implication_rules_partitioned(
        matrix, 0.8, n_partitions=4
    )
    parallel = find_implication_rules_partitioned(
        matrix, 0.8, n_partitions=4, n_workers=2
    )
    assert parallel.pairs() == serial.pairs()


def test_apriori_agrees_with_dmc_on_newsp(matrices):
    matrix = matrices["NewsP"]
    dmc = find_implication_rules(matrix, 0.85, options=OPTIONS)
    apriori = apriori_pair_rules(matrix, 0.85)
    assert dmc.pairs() == apriori.rules.pairs()


def test_rule_statistics_verified_everywhere(matrices):
    """The mined statistics on realistic data always recompute."""
    for name, matrix in matrices.items():
        rules = find_implication_rules(matrix, 0.8, options=OPTIONS)
        assert verify_implication_rules(matrix, rules, 0.8) == [], name
