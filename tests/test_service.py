"""Mining-as-a-service tests: specs, quotas, scheduler, HTTP API, and
the crash-point sweep over the durable job index.

The exactness bar is the same as everywhere else in this repo: a
``kill -9`` at *any* enumerated storage operation, followed by a
restart, must lose no job, duplicate no result, and produce rule sets
identical to an uninterrupted run (the engines are deterministic and
the result commit is first-writer-wins, so recovery is exact, not
best-effort).  The subprocess chaos suites (real ``SIGKILL``/
``SIGTERM`` against ``python -m repro serve``) are marked ``slow``.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.cli import build_parser
from repro.mining.export import rules_to_json
from repro.runtime.crashpoints import enumerate_crash_points
from repro.runtime.storage import FaultyStorage
from repro.runtime.supervisor import SupervisorError, transient_pool_failure
from repro.service import (
    AdmissionError,
    JobSpec,
    MiningService,
    QuotaPolicy,
    Scheduler,
    TenantQuota,
)
from repro.service.jobs import (
    CANCELLED, DONE, FAILED, QUEUED, RUNNING, JobDataError, JobIndex,
)

# Small deterministic data: a->b holds at 3/4, b->a at 3/5.
TRANSACTIONS = [
    ["a", "b"], ["a", "b"], ["a", "b"], ["a"], ["b", "c"], ["b", "c"],
]

SIM_TRANSACTIONS = [
    ["x", "y"], ["x", "y"], ["x", "y"], ["x"], ["y", "z"],
]


def spec_doc(job_id, transactions=None, **extra):
    document = {
        "job_id": job_id,
        "task": "implication",
        "threshold": "3/4",
        "data": {
            "transactions": (
                TRANSACTIONS if transactions is None else transactions
            )
        },
    }
    document.update(extra)
    return document


def canonical_rules(result_text):
    """The rules of a result document, canonicalized for comparison
    (stats and timings are run-dependent; rules must not be)."""
    return json.dumps(json.loads(result_text)["rules"], sort_keys=True)


def direct_oracle(transactions, task="implication", threshold="3/4"):
    """The rule set of an uninterrupted direct mine() on `transactions`."""
    result = repro.mine(
        repro.BinaryMatrix.from_transactions(transactions),
        task=task, threshold=threshold,
    )
    return canonical_rules(
        rules_to_json(result.rules, vocabulary=result.vocabulary)
    )


# ----------------------------------------------------------------------
# JobSpec
# ----------------------------------------------------------------------


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec.from_mapping(spec_doc("j1", tenant="acme"))
        again = JobSpec.from_mapping(spec.to_mapping())
        assert again == spec
        assert again.tenant == "acme"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown job-spec keys"):
            JobSpec.from_mapping(spec_doc("j1", frobnicate=1))

    def test_missing_required_key(self):
        document = spec_doc("j1")
        del document["threshold"]
        with pytest.raises(ValueError, match="missing 'threshold'"):
            JobSpec.from_mapping(document)

    def test_exactly_one_data_source(self):
        document = spec_doc("j1")
        document["data"]["path"] = "also.txt"
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec.from_mapping(document)
        document["data"] = {}
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec.from_mapping(document)

    @pytest.mark.parametrize(
        "bad_id", ["a/b", "../up", ".hidden", ""],
    )
    def test_unsafe_job_id_rejected(self, bad_id):
        with pytest.raises(ValueError, match="job_id"):
            JobSpec.from_mapping(spec_doc(bad_id))

    def test_generated_job_id_when_absent(self):
        document = spec_doc("x")
        del document["job_id"]
        spec = JobSpec.from_mapping(document)
        assert spec.job_id.startswith("job-")

    def test_config_contradiction_caught_at_parse(self):
        with pytest.raises(ValueError, match="engine"):
            JobSpec.from_mapping(spec_doc("j1", engine="warp-drive"))

    def test_rows_estimate_inline(self):
        spec = JobSpec.from_mapping(spec_doc("j1"))
        assert spec.rows_estimate() == len(TRANSACTIONS)

    def test_rows_estimate_file(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2\n2 3\n1 3\n")
        spec = JobSpec.from_mapping(
            {"job_id": "j1", "task": "implication", "threshold": "3/4",
             "data": {"path": str(path)}}
        )
        assert spec.rows_estimate() == 3

    def test_rows_estimate_dataset_unknowable(self):
        spec = JobSpec.from_mapping(
            {"job_id": "j1", "task": "implication", "threshold": "3/4",
             "data": {"dataset": "NewsP", "scale": 0.05}}
        )
        assert spec.rows_estimate() is None

    def test_load_data_missing_file_is_permanent(self):
        spec = JobSpec.from_mapping(
            {"job_id": "j1", "task": "implication", "threshold": "3/4",
             "data": {"path": "/nonexistent/nowhere.txt"}}
        )
        with pytest.raises(JobDataError):
            spec.load_data()
        assert not transient_pool_failure(JobDataError("x"))

    def test_memory_budget_rides_only_on_auto(self):
        auto = JobSpec.from_mapping(spec_doc("j1", memory_budget=1 << 20))
        assert auto.mining_kwargs(None)["memory_budget"] == 1 << 20
        vec = JobSpec.from_mapping(
            spec_doc("j2", engine="vector", memory_budget=1 << 20)
        )
        assert "memory_budget" not in vec.mining_kwargs(None)
        plain = JobSpec.from_mapping(spec_doc("j3"))
        assert (
            plain.mining_kwargs(None, default_memory_budget=4096)[
                "memory_budget"
            ]
            == 4096
        )

    def test_stream_engine_binds_workdir(self, tmp_path):
        data = tmp_path / "data.txt"
        data.write_text("1 2\n2 3\n")
        spec = JobSpec.from_mapping(
            {"job_id": "j1", "task": "implication", "threshold": "3/4",
             "data": {"path": str(data)}, "engine": "stream"}
        )
        kwargs = spec.mining_kwargs(str(tmp_path / "work"))
        assert kwargs["checkpoint_dir"].startswith(str(tmp_path / "work"))
        assert kwargs["spill_dir"].startswith(str(tmp_path / "work"))
        assert "checkpoint_dir" not in spec.mining_kwargs(None)


# ----------------------------------------------------------------------
# JobIndex
# ----------------------------------------------------------------------


class TestJobIndex:
    def test_transitions_are_durable(self, tmp_path):
        index = JobIndex(str(tmp_path))
        spec = JobSpec.from_mapping(spec_doc("j1"))
        index.create(spec)
        index.transition("j1", RUNNING, attempts=1)
        # A second index over the same directory is "the next process".
        reborn = JobIndex(str(tmp_path))
        report = reborn.recover()
        assert report.requeued == ["j1"]
        assert reborn.get("j1").state == QUEUED
        assert reborn.get("j1").attempts == 1

    def test_create_is_idempotent(self, tmp_path):
        index = JobIndex(str(tmp_path))
        spec = JobSpec.from_mapping(spec_doc("j1"))
        first = index.create(spec)
        second = index.create(spec)
        assert second is first

    def test_result_commit_first_writer_wins(self, tmp_path):
        index = JobIndex(str(tmp_path))
        assert index.commit_result("j1", '{"winner": 1}') is True
        assert index.commit_result("j1", '{"late": 2}') is False
        assert json.loads(index.read_result("j1")) == {"winner": 1}

    def test_recover_promotes_running_with_result(self, tmp_path):
        index = JobIndex(str(tmp_path))
        index.create(JobSpec.from_mapping(spec_doc("j1")))
        index.transition("j1", RUNNING, attempts=1)
        index.commit_result("j1", '{"rules": []}')
        reborn = JobIndex(str(tmp_path))
        report = reborn.recover()
        assert report.completed == ["j1"]
        assert reborn.get("j1").state == DONE

    def test_recover_keeps_terminal_states(self, tmp_path):
        index = JobIndex(str(tmp_path))
        for job_id, state in (("a", DONE), ("b", FAILED), ("c", CANCELLED)):
            index.create(JobSpec.from_mapping(spec_doc(job_id)))
            index.transition(job_id, state)
        reborn = JobIndex(str(tmp_path))
        report = reborn.recover()
        assert sorted(report.terminal) == ["a", "b", "c"]
        assert reborn.get("b").state == FAILED

    def test_recover_skips_corrupt_file(self, tmp_path):
        index = JobIndex(str(tmp_path))
        index.create(JobSpec.from_mapping(spec_doc("good")))
        (tmp_path / "jobs" / "bad.json").write_text("{not json")
        reborn = JobIndex(str(tmp_path))
        report = reborn.recover()
        assert report.corrupt == ["bad.json"]
        assert reborn.get("good") is not None


# ----------------------------------------------------------------------
# Quotas
# ----------------------------------------------------------------------


class TestQuotas:
    def test_max_queued(self):
        policy = QuotaPolicy(default=TenantQuota(max_queued=2))
        policy.admit("t", queued=1, rows=None)
        with pytest.raises(AdmissionError) as excinfo:
            policy.admit("t", queued=2, rows=None)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None

    def test_max_rows_is_structural(self):
        policy = QuotaPolicy(default=TenantQuota(max_rows=10))
        with pytest.raises(AdmissionError) as excinfo:
            policy.admit("t", queued=0, rows=11)
        assert excinfo.value.retry_after is None
        assert excinfo.value.kind == "rows"
        policy.admit("t", queued=0, rows=None)  # unknowable size admitted

    def test_per_tenant_override(self):
        policy = QuotaPolicy(
            default=TenantQuota(max_queued=1),
            per_tenant={"vip": TenantQuota(max_queued=100)},
        )
        policy.admit("vip", queued=50, rows=None)
        with pytest.raises(AdmissionError):
            policy.admit("pleb", queued=1, rows=None)

    def test_may_start(self):
        policy = QuotaPolicy(default=TenantQuota(max_concurrent=2))
        assert policy.may_start("t", running=1)
        assert not policy.may_start("t", running=2)


# ----------------------------------------------------------------------
# Scheduler (synchronous mode, stub executors)
# ----------------------------------------------------------------------


def make_index(tmp_path, *job_ids, **spec_extra):
    index = JobIndex(str(tmp_path))
    for job_id in job_ids:
        index.create(JobSpec.from_mapping(spec_doc(job_id, **spec_extra)))
    return index


class TestScheduler:
    def test_success_commits_result(self, tmp_path):
        index = make_index(tmp_path, "j1")

        def ok_executor(record, workdir, observer, **kwargs):
            return '{"rules": [1]}', 1

        scheduler = Scheduler(index, n_slots=0, executor=ok_executor)
        scheduler.enqueue("j1")
        scheduler.run_until_idle()
        assert index.get("j1").state == DONE
        assert index.get("j1").rules == 1
        assert index.has_result("j1")

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        index = make_index(tmp_path, "j1", max_attempts=3)
        attempts = []

        def flaky(record, workdir, observer, **kwargs):
            attempts.append(record.attempts)
            if len(attempts) < 3:
                raise SupervisorError("worker pool fell over")
            return '{"rules": []}', 0

        scheduler = Scheduler(
            index, n_slots=0, executor=flaky, retry_base_delay=0.0
        )
        scheduler.enqueue("j1")
        scheduler.run_until_idle()
        assert attempts == [1, 2, 3]
        record = index.get("j1")
        assert record.state == DONE
        assert record.attempts == 3

    def test_attempts_exhausted_fails(self, tmp_path):
        index = make_index(tmp_path, "j1", max_attempts=2)

        def always_down(record, workdir, observer, **kwargs):
            raise SupervisorError("still down")

        scheduler = Scheduler(
            index, n_slots=0, executor=always_down, retry_base_delay=0.0
        )
        scheduler.enqueue("j1")
        scheduler.run_until_idle()
        record = index.get("j1")
        assert record.state == FAILED
        assert record.attempts == 2
        assert "SupervisorError" in record.error

    def test_permanent_failure_never_retries(self, tmp_path):
        index = make_index(tmp_path, "j1", max_attempts=5)
        calls = []

        def bad_data(record, workdir, observer, **kwargs):
            calls.append(1)
            raise JobDataError("no such file")

        scheduler = Scheduler(
            index, n_slots=0, executor=bad_data, retry_base_delay=0.0
        )
        scheduler.enqueue("j1")
        scheduler.run_until_idle()
        assert len(calls) == 1
        assert index.get("j1").state == FAILED

    def test_timeout_fails_job(self, tmp_path):
        index = make_index(tmp_path, "j1", timeout_seconds=0.05)

        def slow(record, workdir, observer, **kwargs):
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                observer.on_row(0, 10, 0, 0)  # cancellation point
                time.sleep(0.005)
            return '{"rules": []}', 0

        scheduler = Scheduler(index, n_slots=0, executor=slow)
        scheduler.enqueue("j1")
        scheduler.run_until_idle()
        record = index.get("j1")
        assert record.state == FAILED
        assert "timeout" in record.error

    def test_cancel_queued_job(self, tmp_path):
        index = make_index(tmp_path, "j1")
        scheduler = Scheduler(index, n_slots=0)
        scheduler.enqueue("j1")
        assert scheduler.cancel("j1") == CANCELLED
        scheduler.run_until_idle()
        assert index.get("j1").state == CANCELLED
        assert not index.has_result("j1")

    def test_cancel_running_job(self, tmp_path):
        index = make_index(tmp_path, "j1")
        started = []

        def looping(record, workdir, observer, **kwargs):
            started.append(record.job_id)
            for _ in range(2000):
                observer.on_row(0, 10, 0, 0)
                time.sleep(0.005)
            return '{"rules": []}', 0

        scheduler = Scheduler(index, n_slots=1, executor=looping)
        try:
            scheduler.enqueue("j1")
            deadline = time.monotonic() + 5.0
            while not started and time.monotonic() < deadline:
                time.sleep(0.01)
            assert started
            scheduler.cancel("j1")
            while (
                index.get("j1").state != CANCELLED
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert index.get("j1").state == CANCELLED
        finally:
            scheduler.close()

    def test_max_concurrent_respected(self, tmp_path):
        index = make_index(tmp_path, "a", "b", "c")
        policy = QuotaPolicy(default=TenantQuota(max_concurrent=1))
        peak = {"running": 0, "now": 0}

        def tracked(record, workdir, observer, **kwargs):
            peak["now"] += 1
            peak["running"] = max(peak["running"], peak["now"])
            time.sleep(0.05)
            peak["now"] -= 1
            return '{"rules": []}', 0

        scheduler = Scheduler(
            index, policy=policy, n_slots=3, executor=tracked
        )
        try:
            for job_id in ("a", "b", "c"):
                scheduler.enqueue(job_id)
            deadline = time.monotonic() + 10.0
            while not scheduler.idle() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert scheduler.idle()
            assert peak["running"] == 1  # one tenant, capped at 1
            assert all(
                index.get(job_id).state == DONE
                for job_id in ("a", "b", "c")
            )
        finally:
            scheduler.close()


# ----------------------------------------------------------------------
# The service end to end (in-process HTTP)
# ----------------------------------------------------------------------


def http(method, url, body=None):
    request = urllib.request.Request(
        url, method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                json.loads(response.read() or b"null"),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            json.loads(error.read() or b"null"),
            dict(error.headers),
        )


class TestServiceHTTP:
    @pytest.fixture
    def service(self, tmp_path):
        policy = QuotaPolicy(
            default=TenantQuota(max_queued=3, max_rows=1000)
        )
        svc = MiningService(
            str(tmp_path / "state"), n_slots=0, serve=True, policy=policy
        )
        try:
            yield svc
        finally:
            svc.close()

    def test_submit_run_result(self, service):
        base = service.server.url
        code, document, _ = http("POST", base + "/jobs", spec_doc("h1"))
        assert code == 201
        assert document["state"] == QUEUED
        service.run_until_idle()
        code, document, _ = http("GET", base + "/jobs/h1")
        assert (code, document["state"]) == (200, DONE)
        code, result, _ = http("GET", base + "/jobs/h1/result")
        assert code == 200
        assert canonical_rules(json.dumps(result)) == direct_oracle(
            TRANSACTIONS
        )

    def test_resubmit_is_idempotent(self, service):
        base = service.server.url
        assert http("POST", base + "/jobs", spec_doc("h1"))[0] == 201
        code, document, _ = http("POST", base + "/jobs", spec_doc("h1"))
        assert code == 200  # same job, not a second one
        assert len(service.list_jobs()) == 1

    def test_result_before_done_is_409(self, service):
        base = service.server.url
        http("POST", base + "/jobs", spec_doc("h1"))
        code, document, _ = http("GET", base + "/jobs/h1/result")
        assert code == 409
        assert document["state"] == QUEUED

    def test_unknown_job_is_404(self, service):
        base = service.server.url
        assert http("GET", base + "/jobs/ghost")[0] == 404
        assert http("GET", base + "/jobs/ghost/result")[0] == 404
        assert http("DELETE", base + "/jobs/ghost")[0] == 404

    def test_malformed_spec_is_400(self, service):
        base = service.server.url
        assert http("POST", base + "/jobs", {"task": "implication"})[0] == 400
        assert http("POST", base + "/jobs", spec_doc("h1", nope=1))[0] == 400

    def test_disallowed_method_is_405_with_allow(self, service):
        base = service.server.url
        code, _, headers = http("PUT", base + "/jobs")
        assert code == 405
        assert "POST" in headers["Allow"]

    def test_queue_quota_is_429_with_retry_after(self, service):
        base = service.server.url
        for index in range(3):
            assert (
                http("POST", base + "/jobs", spec_doc(f"q{index}"))[0] == 201
            )
        code, document, headers = http(
            "POST", base + "/jobs", spec_doc("q3")
        )
        assert code == 429
        assert document["kind"] == "quota"
        assert int(headers["Retry-After"]) > 0

    def test_oversized_job_is_429_without_retry_after(self, service):
        base = service.server.url
        big = spec_doc("big", transactions=[["x"]] * 2000)
        code, document, headers = http("POST", base + "/jobs", big)
        assert code == 429
        assert document["kind"] == "rows"
        assert "Retry-After" not in headers

    def test_tenant_filtered_listing(self, service):
        base = service.server.url
        http("POST", base + "/jobs", spec_doc("a1", tenant="alpha"))
        http("POST", base + "/jobs", spec_doc("b1", tenant="beta"))
        _, document, _ = http("GET", base + "/jobs?tenant=alpha")
        assert [job["job_id"] for job in document["jobs"]] == ["a1"]
        _, document, _ = http("GET", base + "/jobs")
        assert len(document["jobs"]) == 2

    def test_cancel_queued(self, service):
        base = service.server.url
        http("POST", base + "/jobs", spec_doc("h1"))
        code, document, _ = http("DELETE", base + "/jobs/h1")
        assert (code, document["state"]) == (200, CANCELLED)
        service.run_until_idle()
        assert service.get_job("h1").state == CANCELLED

    def test_draining_refuses_with_503(self, service):
        base = service.server.url
        service.drain(timeout=1.0)
        code, document, _ = http("POST", base + "/jobs", spec_doc("h9"))
        assert code == 503
        assert document["kind"] == "draining"
        code, health, _ = http("GET", base + "/healthz")
        assert code == 503
        assert health["draining"] is True

    def test_metrics_carry_service_counters(self, service):
        base = service.server.url
        http("POST", base + "/jobs", spec_doc("h1"))
        service.run_until_idle()
        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            text = resp.read().decode("utf-8")
        assert "dmc_service_jobs_submitted_total 1" in text
        assert 'dmc_service_jobs_finished_total{state="done"} 1' in text

    def test_url_discovery_file(self, service, tmp_path):
        url_file = tmp_path / "state" / "service.url"
        assert url_file.read_text().strip() == service.server.url

    def test_quota_storm_sheds_load_exactly(self, service):
        """A burst over the queue quota: every admit runs to done,
        every rejection is a clean 429, nothing is half-admitted."""
        base = service.server.url
        admitted, rejected = [], []
        for index in range(12):
            code, _, _ = http("POST", base + "/jobs", spec_doc(f"s{index}"))
            if code == 201:
                admitted.append(f"s{index}")
            else:
                assert code == 429
                rejected.append(f"s{index}")
        assert len(admitted) == 3  # max_queued
        assert len(rejected) == 9
        service.run_until_idle()
        oracle = direct_oracle(TRANSACTIONS)
        for job_id in admitted:
            record = service.get_job(job_id)
            assert record.state == DONE
            assert canonical_rules(service.read_result(job_id)) == oracle
        for job_id in rejected:
            assert service.get_job(job_id) is None


# ----------------------------------------------------------------------
# Crash-point sweep over the job index
# ----------------------------------------------------------------------


def service_workload(state_dir, documents, fresh):
    """A restartable service workload for enumerate_crash_points.

    ``fresh=True`` (the ``run`` callable) wipes the state directory —
    every crash run begins from the same blank slate, so the storage
    schedule is identical up to the crash.  ``fresh=False`` (the
    ``recover`` callable) boots over whatever the crash left behind,
    exactly like a restarted process, and re-submits the same specs
    (idempotent by job_id — the client retry after an unacknowledged
    submit).
    """

    def workload(storage):
        if fresh:
            shutil.rmtree(state_dir, ignore_errors=True)
        service = MiningService(
            state_dir, storage=storage, n_slots=0, retry_base_delay=0.0
        )
        for document in documents:
            service.submit(document)
        service.run_until_idle()
        outcome = {}
        for record in service.list_jobs():
            rules = (
                canonical_rules(service.read_result(record.job_id))
                if record.state == DONE
                else None
            )
            outcome[record.job_id] = (record.state, rules)
        service.close()
        return outcome

    return workload


class TestCrashPoints:
    def test_every_job_index_op_recovers_exactly(self, tmp_path):
        """kill -9 at every storage operation of a two-job service run:
        restart must converge to both jobs done with oracle rules."""
        state_dir = str(tmp_path / "state")
        documents = [
            spec_doc("imp1"),
            {
                "job_id": "sim1", "task": "similarity", "threshold": "3/5",
                "data": {"transactions": SIM_TRANSACTIONS},
            },
        ]
        expected = {
            "imp1": (DONE, direct_oracle(TRANSACTIONS)),
            "sim1": (
                DONE,
                direct_oracle(
                    SIM_TRANSACTIONS, task="similarity", threshold="3/5"
                ),
            ),
        }
        report = enumerate_crash_points(
            service_workload(state_dir, documents, fresh=True),
            recover=service_workload(state_dir, documents, fresh=False),
            expected=expected,
        )
        assert report.total_ops > 20  # the sweep actually covered work
        assert report.failures == [], report.describe_failures()

    def test_streaming_job_resumes_through_checkpoints(self, tmp_path):
        """A stream-engine job (checkpoints + spill under the job's
        work dir) crashed at strided storage ops, including mid-mine:
        the restart resumes via the checkpoint machinery, rules exact."""
        data_path = tmp_path / "data.txt"
        rows = [
            [str(v) for v in (1, 2)] if i % 3 else [str(i % 7), "2"]
            for i in range(60)
        ]
        data_path.write_text(
            "\n".join(" ".join(row) for row in rows) + "\n"
        )
        # Oracle over the same file (numeric ids, no vocabulary), so
        # the comparison is token-for-token with the service's runs.
        direct = repro.mine(
            str(data_path), task="implication", threshold="3/4"
        )
        oracle = canonical_rules(
            rules_to_json(direct.rules, vocabulary=direct.vocabulary)
        )
        state_dir = str(tmp_path / "state")
        documents = [
            {
                "job_id": "stream1", "task": "implication",
                "threshold": "3/4", "engine": "stream",
                "data": {"path": str(data_path)},
            }
        ]
        report = enumerate_crash_points(
            service_workload(state_dir, documents, fresh=True),
            recover=service_workload(state_dir, documents, fresh=False),
            expected={"stream1": (DONE, oracle)},
            max_points=24,
        )
        assert report.total_ops > 40  # checkpoints/spill in the schedule
        assert report.failures == [], report.describe_failures()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCli:
    def test_serve_parser(self):
        args = build_parser().parse_args(
            ["serve", "--state-dir", "/tmp/x", "--slots", "4",
             "--max-queued", "10", "--port", "8080"]
        )
        assert args.command == "serve"
        assert args.slots == 4
        assert args.max_queued == 10

    def test_journal_tail_follow_flag(self):
        args = build_parser().parse_args(
            ["journal", "tail", "j.jsonl", "--follow"]
        )
        assert args.follow is True
        args = build_parser().parse_args(["journal", "tail", "j.jsonl"])
        assert args.follow is False


# ----------------------------------------------------------------------
# Subprocess chaos: real signals against `python -m repro serve`
# ----------------------------------------------------------------------


def launch_serve(state_dir, *extra):
    environment = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    environment["PYTHONPATH"] = os.path.join(root, "src")
    # A killed predecessor leaves its service.url behind; remove it so
    # the wait below always reads the *new* instance's URL.
    try:
        os.unlink(os.path.join(state_dir, "service.url"))
    except OSError:
        pass
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", state_dir, "--slots", "1", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=environment,
    )
    url_file = os.path.join(state_dir, "service.url")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if os.path.exists(url_file):
            with open(url_file) as handle:
                return process, handle.read().strip()
        if process.poll() is not None:
            raise AssertionError(
                "serve exited early:\n"
                + process.stdout.read().decode("utf-8", "replace")
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("serve did not publish its URL in time")


def wait_all_done(base, job_ids, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        states = {
            job_id: http("GET", f"{base}/jobs/{job_id}")[1].get("state")
            for job_id in job_ids
        }
        if all(state == DONE for state in states.values()):
            return states
        if any(state in (FAILED, CANCELLED) for state in states.values()):
            raise AssertionError(f"job reached a bad state: {states}")
        time.sleep(0.1)
    raise AssertionError(f"jobs not done in time: {states}")


@pytest.mark.slow
class TestServiceChaos:
    def test_kill9_mid_job_restart_recovers(self, tmp_path):
        """SIGKILL the service right after admitting work; the restart
        must finish every job with rules identical to a direct run and
        exactly one result file per job."""
        state_dir = str(tmp_path / "state")
        # Enough rows that the kill plausibly lands mid-mine; the
        # assertions hold wherever it lands.
        rows = [["a", "b"] if i % 4 else ["b", "c"] for i in range(400)]
        documents = [
            spec_doc("k1", transactions=rows),
            spec_doc("k2", transactions=rows),
            spec_doc("k3"),
        ]
        process, base = launch_serve(state_dir)
        try:
            for document in documents:
                code, _, _ = http("POST", base + "/jobs", document)
                assert code == 201
        finally:
            process.kill()  # SIGKILL: no drain, no cleanup
            process.wait(timeout=10)

        process, base = launch_serve(state_dir)
        try:
            states = wait_all_done(base, ["k1", "k2", "k3"])
            assert set(states.values()) == {DONE}
            oracle_rows = direct_oracle(rows)
            oracle_small = direct_oracle(TRANSACTIONS)
            for job_id, oracle in (
                ("k1", oracle_rows), ("k2", oracle_rows),
                ("k3", oracle_small),
            ):
                code, result, _ = http("GET", f"{base}/jobs/{job_id}/result")
                assert code == 200
                assert canonical_rules(json.dumps(result)) == oracle
            # Exactly one committed result artifact per job.
            results_dir = os.path.join(state_dir, "results")
            committed = sorted(
                name for name in os.listdir(results_dir)
                if name.endswith(".json")
            )
            assert committed == ["k1.json", "k2.json", "k3.json"]
        finally:
            process.terminate()
            assert process.wait(timeout=30) == 0

    def test_kill9_restart_loop_converges(self, tmp_path):
        """Three consecutive SIGKILLs at arbitrary moments: the job
        index never regresses and the final boot completes the work."""
        state_dir = str(tmp_path / "state")
        rows = [["a", "b"] if i % 4 else ["b", "c"] for i in range(400)]
        documents = [spec_doc(f"loop{i}", transactions=rows)
                     for i in range(2)]
        process, base = launch_serve(state_dir)
        for document in documents:
            assert http("POST", base + "/jobs", document)[0] == 201
        for _ in range(3):
            process.kill()
            process.wait(timeout=10)
            process, base = launch_serve(state_dir)
            time.sleep(0.3)  # let it get partway into the work
        try:
            states = wait_all_done(base, [d["job_id"] for d in documents])
            assert set(states.values()) == {DONE}
            oracle = direct_oracle(rows)
            for document in documents:
                code, result, _ = http(
                    "GET", f"{base}/jobs/{document['job_id']}/result"
                )
                assert canonical_rules(json.dumps(result)) == oracle
        finally:
            process.terminate()
            assert process.wait(timeout=30) == 0

    def test_sigterm_drains_and_journals_shutdown(self, tmp_path):
        state_dir = str(tmp_path / "state")
        process, base = launch_serve(state_dir)
        assert http("POST", base + "/jobs", spec_doc("d1"))[0] == 201
        wait_all_done(base, ["d1"])
        process.terminate()  # SIGTERM: graceful drain
        assert process.wait(timeout=30) == 0
        journal_path = os.path.join(state_dir, "service.jsonl")
        events = [
            json.loads(line)["event"]
            for line in open(journal_path, encoding="utf-8")
            if line.strip()
        ]
        assert "service-start" in events
        assert "service-drain" in events
        assert "service-drained" in events
        assert events[-1] == "service-stop"
