"""Pair policies (repro.core.policies)."""

from fractions import Fraction

import pytest

from repro.core.policies import (
    HundredPercentPolicy,
    IdentityPolicy,
    ImplicationPolicy,
    PairPolicy,
    SimilarityPolicy,
)


class TestBasePolicy:
    def test_eligibility_follows_canonical_order(self):
        policy = ImplicationPolicy([2, 5, 5], 0.5)
        assert policy.eligible(0, 1)       # fewer ones first
        assert not policy.eligible(1, 0)
        assert policy.eligible(1, 2)       # tie broken by id
        assert not policy.eligible(2, 1)

    def test_abstract_methods_raise(self):
        policy = PairPolicy([1, 1])
        with pytest.raises(NotImplementedError):
            policy.pair_budget(0, 1)
        with pytest.raises(NotImplementedError):
            policy.add_cutoff(0)
        with pytest.raises(NotImplementedError):
            policy.make_rule(0, 1, 0)

    def test_default_dynamic_prune_is_off(self):
        assert not PairPolicy([1, 1]).dynamic_prune(0, 1, 0, 0, 0)


class TestImplicationPolicy:
    def test_budget_is_per_antecedent(self):
        policy = ImplicationPolicy([100, 200], 0.85)
        assert policy.pair_budget(0, 1) == 15
        assert policy.add_cutoff(0) == 15

    def test_make_rule_checks_budget(self):
        policy = ImplicationPolicy([100, 200], 0.85)
        assert policy.make_rule(0, 1, 16) is None
        rule = policy.make_rule(0, 1, 15)
        assert rule.hits == 85
        assert rule.confidence == Fraction(17, 20)

    def test_threshold_normalized(self):
        policy = ImplicationPolicy([10], 0.9)
        assert policy.minconf == Fraction(9, 10)

    def test_hundred_percent_policy_budget_zero(self):
        policy = HundredPercentPolicy([5, 7])
        assert policy.pair_budget(0, 1) == 0
        assert policy.add_cutoff(1) == 0
        assert policy.make_rule(0, 1, 0).confidence == 1
        assert policy.make_rule(0, 1, 1) is None


class TestSimilarityPolicy:
    def test_pair_budget_example(self):
        # Example 5.1: ones 4 and 5 at 75% -> zero sparse-side misses.
        policy = SimilarityPolicy([4, 5], 0.75)
        assert policy.pair_budget(0, 1) == 0

    def test_density_pruning_blocks_eligibility(self):
        policy = SimilarityPolicy([2, 10], 0.75)
        assert not policy.eligible(0, 1)

    def test_density_pruning_disabled_restores_eligibility(self):
        policy = SimilarityPolicy([2, 10], 0.75, use_density_pruning=False)
        assert policy.eligible(0, 1)

    def test_weak_budget_without_density_pruning(self):
        strict = SimilarityPolicy([4, 8], 0.5)
        weak = SimilarityPolicy([4, 8], 0.5, use_density_pruning=False)
        assert weak.pair_budget(0, 1) >= strict.pair_budget(0, 1)
        assert weak.pair_budget(0, 1) == weak.add_cutoff(0)

    def test_add_cutoff_is_equal_cardinality_best_case(self):
        policy = SimilarityPolicy([9, 9], Fraction(1, 2))
        assert policy.add_cutoff(0) == policy.pair_budget(0, 1)

    def test_make_rule_is_exact(self):
        policy = SimilarityPolicy([4, 5], 0.75)
        rule = policy.make_rule(0, 1, 0)
        assert rule.similarity == Fraction(4, 5)
        assert policy.make_rule(0, 1, 1) is None

    def test_dynamic_prune_uses_max_hits(self):
        policy = SimilarityPolicy([4, 5], 0.75)
        # After consuming r4 as a hit in Example 5.1's trace.
        assert policy.dynamic_prune(0, 1, 2, 0, 4)

    def test_dynamic_prune_disabled(self):
        policy = SimilarityPolicy([4, 5], 0.75, use_max_hits_pruning=False)
        assert not policy.dynamic_prune(0, 1, 2, 0, 4)


class TestIdentityPolicy:
    def test_only_equal_cardinalities_eligible(self):
        policy = IdentityPolicy([3, 3, 4])
        assert policy.eligible(0, 1)
        assert not policy.eligible(0, 2)
        assert not policy.eligible(1, 0)  # needs j < k

    def test_budget_and_cutoff_zero(self):
        policy = IdentityPolicy([3, 3])
        assert policy.pair_budget(0, 1) == 0
        assert policy.add_cutoff(0) == 0

    def test_make_rule(self):
        policy = IdentityPolicy([3, 3])
        rule = policy.make_rule(0, 1, 0)
        assert rule.similarity == 1
        assert rule.intersection == rule.union == 3
        assert policy.make_rule(0, 1, 1) is None
