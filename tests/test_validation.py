"""Malformed-input handling under the strict / skip / clamp policies."""

from __future__ import annotations

import pytest

from repro.core.stats import PipelineStats
from repro.matrix.io import load_transactions, save_transactions
from repro.matrix.stream import (
    FileSource,
    IterableSource,
    stream_implication_rules,
)
from repro.runtime.validation import (
    VALIDATION_MODES,
    RowValidationError,
    RowValidator,
)

# A transactions file exercising every malformation the ISSUE lists:
# a garbage token, a negative id, a blank line, duplicate ids within a
# row, and a truncated final line (no newline, ends mid-token).
MALFORMED_TEXT = (
    "#dmc-matrix\n"
    "#columns 5\n"
    "0 1 2\n"     # line 3: clean
    "1 xx 2\n"    # line 4: garbage token
    "0 -3 1\n"    # line 5: negative id
    "\n"          # line 6: blank (a legal empty row, never an error)
    "2 2 4 4\n"   # line 7: duplicate ids (normalized, never an error)
    "0 1 3."      # line 8: truncated final line, ends mid-token
)

#: (line, offending token fragment) of the genuinely malformed rows.
BAD_LINES = ((4, "'xx'"), (5, "-3"), (8, "'3.'"))


@pytest.fixture
def malformed_path(tmp_path) -> str:
    path = tmp_path / "malformed.txt"
    path.write_text(MALFORMED_TEXT, encoding="utf-8")
    return str(path)


# ----------------------------------------------------------------------
# RowValidator unit behavior.
# ----------------------------------------------------------------------


def test_unknown_mode_is_rejected():
    with pytest.raises(ValueError):
        RowValidator("lenient")


def test_strict_diagnostic_names_source_and_line():
    validator = RowValidator("strict")
    with pytest.raises(RowValidationError) as excinfo:
        validator.validate_tokens(
            ["1", "xx"], line_number=7, source="data.txt"
        )
    assert "data.txt, line 7" in str(excinfo.value)
    assert "unparseable token 'xx'" in str(excinfo.value)
    assert excinfo.value.line_number == 7
    assert excinfo.value.source == "data.txt"


def test_strict_is_a_value_error():
    with pytest.raises(ValueError):
        RowValidator("strict").validate_tokens(["-1"])


def test_clean_rows_are_normalized_in_every_mode():
    for mode in VALIDATION_MODES:
        validator = RowValidator(mode)
        assert validator.validate_tokens(["2", "0", "2"]) == (0, 2)
        assert validator.rows_skipped == 0
        assert validator.rows_clamped == 0


def test_skip_counts_each_dropped_row():
    validator = RowValidator("skip")
    assert validator.validate_tokens(["xx"]) is None
    assert validator.validate_row([-1, 0]) is None
    assert validator.validate_tokens(["1", "2"]) == (1, 2)
    assert validator.rows_seen == 3
    assert validator.rows_skipped == 2


def test_clamp_repairs_and_counts_tokens():
    validator = RowValidator("clamp")
    assert validator.validate_tokens(["1", "xx", "-4", "2"]) == (1, 2)
    assert validator.rows_clamped == 1
    assert validator.tokens_dropped == 2


def test_max_column_id_bound():
    validator = RowValidator("skip", max_column_id=5)
    assert validator.validate_tokens(["1", "9"]) is None
    with pytest.raises(RowValidationError) as excinfo:
        RowValidator("strict", max_column_id=5).validate_tokens(["9"])
    assert "max_column_id=5" in str(excinfo.value)


def test_max_row_length_truncates_in_clamp_mode():
    validator = RowValidator("clamp", max_row_length=2)
    assert validator.validate_row([3, 1, 2]) == (1, 2)
    assert validator.rows_clamped == 1
    assert RowValidator("skip", max_row_length=2).validate_row(
        [1, 2, 3]
    ) is None


def test_reset_zeroes_counters():
    validator = RowValidator("skip")
    validator.validate_tokens(["xx"])
    validator.reset()
    assert validator.rows_seen == 0
    assert validator.rows_skipped == 0


# ----------------------------------------------------------------------
# Malformed files through FileSource / the streaming pipeline.
# ----------------------------------------------------------------------


def test_strict_file_names_the_first_bad_line(malformed_path):
    source = FileSource(
        malformed_path, validator=RowValidator("strict")
    )
    with pytest.raises(RowValidationError) as excinfo:
        list(source.iter_rows())
    first_bad_line, fragment = BAD_LINES[0]
    assert f"line {first_bad_line}" in str(excinfo.value)
    assert fragment in str(excinfo.value)
    assert malformed_path in str(excinfo.value)


def test_skip_file_keeps_only_clean_rows(malformed_path):
    validator = RowValidator("skip")
    source = FileSource(malformed_path, validator=validator)
    rows = list(source.iter_rows())
    # Clean line 3, the legal blank line, and the deduplicated line 7.
    assert rows == [(0, 1, 2), (), (2, 4)]
    assert validator.rows_skipped == len(BAD_LINES)


def test_clamp_file_salvages_every_row(malformed_path):
    validator = RowValidator("clamp")
    source = FileSource(malformed_path, validator=validator)
    rows = list(source.iter_rows())
    assert rows == [(0, 1, 2), (1, 2), (0, 1), (), (2, 4), (0, 1)]
    assert validator.rows_clamped == len(BAD_LINES)
    assert validator.tokens_dropped == len(BAD_LINES)


def test_skip_count_lands_in_scan_stats(malformed_path):
    stats = PipelineStats()
    source = FileSource(malformed_path, validator=RowValidator("skip"))
    stream_implication_rules(source, 0.8, stats=stats)
    assert stats.hundred_percent_scan.rows_skipped == len(BAD_LINES)


def test_clamp_count_lands_in_scan_stats(malformed_path):
    stats = PipelineStats()
    source = FileSource(malformed_path, validator=RowValidator("clamp"))
    stream_implication_rules(source, 0.8, stats=stats)
    assert stats.hundred_percent_scan.rows_clamped == len(BAD_LINES)


def test_without_validator_garbage_raises_plain_value_error(
    malformed_path,
):
    with pytest.raises(ValueError):
        list(FileSource(malformed_path).iter_rows())


def test_validator_on_iterable_source():
    validator = RowValidator("skip")
    source = IterableSource(
        [(0, 1), ("xx",), (2, -1), (1, 2)], validator=validator
    )
    assert list(source.iter_rows()) == [(0, 1), (1, 2)]
    assert validator.rows_skipped == 2
    with pytest.raises(RowValidationError) as excinfo:
        list(
            IterableSource(
                [(0, 1), ("xx",)], validator=RowValidator("strict")
            ).iter_rows()
        )
    assert "line 2" in str(excinfo.value)


# ----------------------------------------------------------------------
# Malformed files through load_transactions (in-memory path).
# ----------------------------------------------------------------------


def test_load_transactions_strict_rejects(malformed_path):
    with pytest.raises(RowValidationError) as excinfo:
        load_transactions(malformed_path, validator=RowValidator("strict"))
    assert f"line {BAD_LINES[0][0]}" in str(excinfo.value)


def test_load_transactions_skip_and_clamp(malformed_path):
    validator = RowValidator("skip")
    matrix = load_transactions(malformed_path, validator=validator)
    assert matrix.n_rows == 3
    assert validator.rows_skipped == len(BAD_LINES)

    validator = RowValidator("clamp")
    matrix = load_transactions(malformed_path, validator=validator)
    assert matrix.n_rows == 6
    assert validator.rows_clamped == len(BAD_LINES)


def test_load_transactions_validates_labelled_rows(tmp_path):
    from repro.matrix.binary_matrix import BinaryMatrix, Vocabulary

    matrix = BinaryMatrix(
        [(0, 1), (1, 2)],
        n_columns=3,
        vocabulary=Vocabulary(["ham", "spam", "eggs"]),
    )
    path = str(tmp_path / "labelled.txt")
    save_transactions(matrix, path)
    validator = RowValidator("skip", max_row_length=1)
    loaded = load_transactions(path, validator=validator)
    assert loaded.n_rows == 0
    assert validator.rows_skipped == 2


# ----------------------------------------------------------------------
# CLI surface.
# ----------------------------------------------------------------------


def test_cli_strict_rejects_with_line_number(malformed_path, capsys):
    from repro.cli import main

    assert (
        main(["mine-imp", malformed_path, "--validate", "strict"]) == 1
    )
    captured = capsys.readouterr()
    assert "invalid input" in captured.err
    assert f"line {BAD_LINES[0][0]}" in captured.err


def test_cli_skip_reports_dropped_rows(malformed_path, capsys):
    from repro.cli import main

    assert (
        main(
            [
                "mine-imp",
                malformed_path,
                "--validate",
                "skip",
                "--stream",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert f"skipped {len(BAD_LINES)} malformed row(s)" in captured.err


def test_cli_clamp_reports_repairs(malformed_path, capsys):
    from repro.cli import main

    assert main(["mine-sim", malformed_path, "--validate", "clamp"]) == 0
    captured = capsys.readouterr()
    assert f"clamped {len(BAD_LINES)} malformed row(s)" in captured.err
