"""The experiment harness and figure definitions (repro.experiments).

Experiments run here at small scale; the assertions check structure and
the paper's qualitative shapes, not absolute numbers.
"""

import pytest

from repro.experiments.figures import (
    ablation_prunings,
    ablation_reordering,
    extension_partitioned,
    extension_streaming,
    fig3_memory_curve,
    fig4_column_density,
    fig6_bitmap_jump,
    fig6_breakdown,
    fig6_comparison,
    fig6_peak_memory,
    fig6_time_sweep,
    fig7_sample_rules,
    table1_dataset_sizes,
)
from repro.experiments.harness import (
    EXPERIMENTS,
    ExperimentResult,
    render_table,
    run_experiment,
    timed,
)

SCALE = 0.25


class TestHarness:
    def test_add_row_validates_width(self):
        result = ExperimentResult("x", "t", ("a", "b"))
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult("x", "t", ("a", "b"))
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_render_table_contains_everything(self):
        result = ExperimentResult("x", "title", ("col",))
        result.add_row(42)
        result.notes.append("a note")
        text = render_table(result)
        assert "title" in text and "42" in text and "a note" in text

    def test_registry_contains_all_artifacts(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig3", "fig4", "fig6ab", "fig6cd", "fig6ef",
            "fig6gh", "fig6ij", "fig7", "concl", "abl-reorder",
            "abl-prune", "ext-partition", "ext-stream",
        }

    def test_run_experiment_dispatch(self):
        result = run_experiment("table1", scale=SCALE)
        assert result.experiment_id == "table1"

    def test_timed_returns_seconds_and_value(self):
        seconds, value = timed(sum, [1, 2, 3])
        assert value == 6
        assert seconds >= 0


class TestTable1:
    def test_all_seven_datasets(self):
        result = table1_dataset_sizes(scale=SCALE)
        assert result.column("data") == [
            "Wlog", "WlogP", "plinkF", "plinkT", "News", "NewsP", "dicD",
        ]
        assert all(rows > 0 for rows in result.column("rows"))


class TestFig3:
    def test_reordering_reduces_peak(self):
        result = fig3_memory_curve(scale=SCALE, datasets=("Wlog",))
        original = max(result.column("bytes (original)"))
        reordered = max(result.column("bytes (sparsest-first)"))
        assert reordered < original


class TestFig4:
    def test_histogram_covers_all_columns(self):
        result = fig4_column_density(scale=SCALE, datasets=("dicD",))
        from repro.datasets.registry import load_dataset

        matrix = load_dataset("dicD", scale=SCALE, seed=0)
        nonzero_columns = int((matrix.column_ones() > 0).sum())
        assert sum(result.column("dicD")) == nonzero_columns


class TestFig6Sweeps:
    def test_time_sweep_shape(self):
        result = fig6_time_sweep(
            scale=SCALE, datasets=("dicD",), thresholds=(1.0, 0.75)
        )
        assert len(result.rows) == 2
        # More rules at the lower threshold.
        rules = dict(
            zip(result.column("threshold"), result.column("imp rules"))
        )
        assert rules[0.75] >= rules[1.0]

    def test_breakdown_phases_sum(self):
        result = fig6_breakdown(
            scale=SCALE, dataset="dicD", thresholds=(0.8,)
        )
        for row in result.rows:
            row_map = dict(zip(result.headers, row))
            parts = (
                row_map["pre-scan s"]
                + row_map["100% s"]
                + row_map["<100% s"]
            )
            assert parts == pytest.approx(row_map["total s"], rel=0.05)

    def test_bitmap_jump_reports_phase2_columns(self):
        result = fig6_bitmap_jump(
            scale=1.0, thresholds=(0.85, 0.75)
        )
        by_key = {
            (row[0], row[1]): row for row in result.rows
        }
        # Frequency-4 columns survive at 0.75 but not at 0.85.
        assert (
            by_key[("imp", 0.75)][4] > by_key[("imp", 0.85)][4]
        )

    def test_peak_memory_has_both_kinds(self):
        result = fig6_peak_memory(
            scale=SCALE, datasets=("dicD",), thresholds=(0.8,)
        )
        row = dict(zip(result.headers, result.rows[0]))
        assert row["imp peak bytes"] > 0
        assert row["sim peak bytes"] > 0


class TestFig6Comparison:
    def test_comparison_runs_and_agrees(self):
        result = fig6_comparison(scale=SCALE, thresholds=(0.85,))
        assert len(result.rows) == 1
        assert not any("disagree" in note for note in result.notes)


class TestFig7:
    def test_polgar_rules_found(self):
        result = fig7_sample_rules(scale=0.5)
        antecedents = set(result.column("antecedent"))
        assert "polgar" in antecedents
        assert all(
            confidence >= 0.85
            for confidence in result.column("confidence")
        )


class TestExtensions:
    def test_partitioned_experiment(self):
        result = extension_partitioned(
            scale=SCALE, partition_counts=(1, 3)
        )
        assert result.notes == [
            "all partition counts mined the single-pass rule set"
        ]
        assert len(set(result.column("rules"))) == 1

    def test_streaming_experiment(self):
        result = extension_streaming(scale=SCALE, thresholds=(0.9,))
        assert result.column("agree") == [True]


class TestAblations:
    def test_reordering_ablation(self):
        result = ablation_reordering(scale=SCALE, datasets=("Wlog",))
        row = dict(zip(result.headers, result.rows[0]))
        assert row["reduction x"] > 1

    def test_pruning_ablation_rules_identical(self):
        result = ablation_prunings(scale=SCALE)
        assert result.notes == ["all configurations mined identical rules"]
        rule_counts = set(result.column("rules"))
        assert len(rule_counts) == 1
