"""Rule-set diffing (repro.mining.diff)."""

from repro.core.rules import ImplicationRule, RuleSet
from repro.matrix.binary_matrix import Vocabulary
from repro.mining.diff import diff_rules


def _set(*rules):
    return RuleSet(rules)


class TestDiffRules:
    def test_identical_sets(self):
        rules = _set(ImplicationRule(0, 1, 4, 5))
        diff = diff_rules(rules, rules)
        assert diff.is_empty
        assert diff.unchanged == 1

    def test_added_and_removed(self):
        before = _set(ImplicationRule(0, 1, 4, 5))
        after = _set(ImplicationRule(2, 3, 1, 1))
        diff = diff_rules(before, after)
        assert diff.added.pairs() == {(2, 3)}
        assert diff.removed.pairs() == {(0, 1)}
        assert not diff.is_empty

    def test_changed_statistics(self):
        before = _set(ImplicationRule(0, 1, 4, 5))
        after = _set(ImplicationRule(0, 1, 5, 6))
        diff = diff_rules(before, after)
        assert len(diff.changed) == 1
        assert diff.changed[0][0].hits == 4
        assert diff.changed[0][1].hits == 5

    def test_threshold_diff_on_real_mining(self):
        from repro.core.dmc_imp import find_implication_rules
        from tests.conftest import random_binary_matrix

        matrix = random_binary_matrix(33)
        low = find_implication_rules(matrix, 0.5)
        high = find_implication_rules(matrix, 0.9)
        diff = diff_rules(low, high)
        # Raising the threshold only removes rules.
        assert len(diff.added) == 0
        assert not diff.changed
        assert len(diff.removed) == len(low) - len(high)

    def test_render_empty(self):
        rules = _set(ImplicationRule(0, 1, 1, 1))
        assert "no differences" in diff_rules(rules, rules).render()

    def test_render_with_labels(self):
        vocabulary = Vocabulary(["a", "b"])
        before = RuleSet()
        after = _set(ImplicationRule(0, 1, 1, 1))
        text = diff_rules(before, after).render(vocabulary)
        assert "+ a -> b" in text
