"""Persistence round trips (repro.matrix.io)."""

import pytest

from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.io import (
    load_npz,
    load_transactions,
    save_npz,
    save_transactions,
)


@pytest.fixture
def labelled_matrix():
    return BinaryMatrix.from_transactions(
        [["bread", "butter"], ["butter", "jam"], []]
    )


@pytest.fixture
def plain_matrix():
    return BinaryMatrix([[0, 3], [], [1]], n_columns=5)


class TestTransactionsFormat:
    def test_round_trip_with_vocabulary(self, tmp_path, labelled_matrix):
        path = str(tmp_path / "data.txt")
        save_transactions(labelled_matrix, path)
        loaded = load_transactions(path)
        assert loaded == labelled_matrix
        assert loaded.vocabulary == labelled_matrix.vocabulary

    def test_round_trip_without_vocabulary(self, tmp_path, plain_matrix):
        path = str(tmp_path / "data.txt")
        save_transactions(plain_matrix, path)
        assert load_transactions(path) == plain_matrix

    def test_empty_rows_preserved(self, tmp_path):
        matrix = BinaryMatrix([[], [0], []], n_columns=1)
        path = str(tmp_path / "data.txt")
        save_transactions(matrix, path)
        assert load_transactions(path).n_rows == 3

    def test_header_is_validated(self, tmp_path):
        path = tmp_path / "bogus.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            load_transactions(str(path))

    def test_zero_column_count_preserved(self, tmp_path):
        matrix = BinaryMatrix([[0]], n_columns=7)
        path = str(tmp_path / "data.txt")
        save_transactions(matrix, path)
        assert load_transactions(path).n_columns == 7


class TestNpzFormat:
    def test_round_trip_with_vocabulary(self, tmp_path, labelled_matrix):
        path = str(tmp_path / "data.npz")
        save_npz(labelled_matrix, path)
        loaded = load_npz(path)
        assert loaded == labelled_matrix
        assert loaded.vocabulary == labelled_matrix.vocabulary

    def test_round_trip_without_vocabulary(self, tmp_path, plain_matrix):
        path = str(tmp_path / "data.npz")
        save_npz(plain_matrix, path)
        loaded = load_npz(path)
        assert loaded == plain_matrix
        assert loaded.vocabulary is None

    def test_extension_added_on_load(self, tmp_path, plain_matrix):
        base = str(tmp_path / "data")
        save_npz(plain_matrix, base + ".npz")
        assert load_npz(base) == plain_matrix

    def test_empty_matrix(self, tmp_path):
        matrix = BinaryMatrix([], n_columns=0)
        path = str(tmp_path / "empty.npz")
        save_npz(matrix, path)
        assert load_npz(path) == matrix
