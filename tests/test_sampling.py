"""The Toivonen-style sampling baseline (repro.baselines.sampling)."""

import pytest

from repro.baselines.bruteforce import implication_rules_bruteforce
from repro.baselines.sampling import sampled_implication_rules
from repro.datasets.synthetic import planted_rule_matrix
from tests.conftest import random_binary_matrix


class TestSampling:
    def test_no_false_positives_ever(self):
        for seed in range(8):
            matrix = random_binary_matrix(seed)
            truth = implication_rules_bruteforce(matrix, 0.7)
            result = sampled_implication_rules(
                matrix, 0.7, sample_fraction=0.5, seed=seed
            )
            assert result.rules.pairs() <= truth.pairs(), seed

    def test_full_sample_zero_margin_is_exact(self):
        for seed in range(6):
            matrix = random_binary_matrix(seed)
            truth = implication_rules_bruteforce(matrix, 0.75)
            result = sampled_implication_rules(
                matrix, 0.75, sample_fraction=1.0, margin=0.0, seed=seed
            )
            assert result.rules.pairs() == truth.pairs(), seed

    def test_planted_rules_survive_sampling(self):
        matrix = planted_rule_matrix(
            400, 10, rules=[(0, 1, 0.95)], antecedent_ones=60, seed=9
        )
        truth = implication_rules_bruteforce(matrix, 0.85)
        result = sampled_implication_rules(
            matrix, 0.85, sample_fraction=0.5, margin=0.15, seed=1
        )
        assert (0, 1) in result.rules.pairs()
        assert (0, 1) in truth.pairs()

    def test_statistics_are_global_not_sampled(self):
        matrix = random_binary_matrix(12)
        result = sampled_implication_rules(
            matrix, 0.6, sample_fraction=0.5, seed=0
        )
        sets = matrix.column_sets()
        for rule in result.rules:
            assert rule.ones == len(sets[rule.antecedent])
            assert rule.hits == len(
                sets[rule.antecedent] & sets[rule.consequent]
            )

    def test_diagnostics(self):
        matrix = random_binary_matrix(2)
        result = sampled_implication_rules(
            matrix, 0.7, sample_fraction=0.25, seed=0
        )
        assert result.sample_rows == max(
            1, round(0.25 * matrix.n_rows)
        )
        assert result.candidates_checked >= len(result.rules)

    def test_invalid_fraction_rejected(self):
        matrix = random_binary_matrix(0)
        with pytest.raises(ValueError):
            sampled_implication_rules(matrix, 0.5, sample_fraction=0.0)
        with pytest.raises(ValueError):
            sampled_implication_rules(matrix, 0.5, sample_fraction=1.5)

    def test_larger_margin_never_hurts_recall(self):
        matrix = random_binary_matrix(20)
        truth = implication_rules_bruteforce(matrix, 0.7)
        small = sampled_implication_rules(
            matrix, 0.7, sample_fraction=0.5, margin=0.0, seed=3
        )
        large = sampled_implication_rules(
            matrix, 0.7, sample_fraction=0.5, margin=0.3, seed=3
        )
        assert len(large.false_negatives(truth)) <= len(
            small.false_negatives(truth)
        )
