"""Prometheus text-exposition conformance and metrics thread safety.

The ``/metrics`` endpoint promises a document a stock Prometheus can
scrape, so the format details are pinned here: HELP/TYPE comment
lines, label escaping, the ``+Inf`` bucket, ``_sum``/``_count``
series, and cumulative bucket counts that never decrease.  The hammer
tests pin the thread-safety contract the cross-process merge and the
live HTTP exporter rely on.
"""

import re
import threading

import pytest

from repro.observe import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    metrics_delta,
)

#: A metric sample line: name, optional {labels}, space, value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})?"
    r" -?[0-9].*$"
)


def _filled_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "dmc_rows_scanned_total", "Rows consumed by the scan.",
        scan="partial",
    ).inc(128)
    registry.gauge(
        "dmc_live_candidates", "Live candidates.", scan="partial",
    ).set(7)
    histogram = registry.histogram(
        "dmc_task_seconds", "Per-task latency.", buckets=(0.1, 1.0, 10.0),
    )
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestExpositionFormat:
    def test_every_line_is_comment_or_sample(self):
        text = _filled_registry().to_prometheus()
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"

    def test_help_precedes_type_per_family(self):
        lines = _filled_registry().to_prometheus().splitlines()
        helps = {
            line.split()[2]: index
            for index, line in enumerate(lines)
            if line.startswith("# HELP")
        }
        types = {
            line.split()[2]: index
            for index, line in enumerate(lines)
            if line.startswith("# TYPE")
        }
        assert set(types) == {
            "dmc_rows_scanned_total", "dmc_live_candidates",
            "dmc_task_seconds",
        }
        for name, type_index in types.items():
            assert helps[name] == type_index - 1

    def test_type_line_kinds(self):
        text = _filled_registry().to_prometheus()
        assert "# TYPE dmc_rows_scanned_total counter" in text
        assert "# TYPE dmc_live_candidates gauge" in text
        assert "# TYPE dmc_task_seconds histogram" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = _filled_registry().to_prometheus()
        buckets = re.findall(
            r'dmc_task_seconds_bucket\{le="([^"]+)"\} (\d+)', text
        )
        assert [le for le, _ in buckets] == ["0.1", "1", "10", "+Inf"]
        counts = [int(count) for _, count in buckets]
        assert counts == sorted(counts)  # cumulative: non-decreasing
        assert counts == [1, 3, 4, 5]
        assert "dmc_task_seconds_sum 56.05" in text
        assert "dmc_task_seconds_count 5" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "dmc_io_errors_total", "I/O errors.",
            kind='disk "full"\non\\dev',
        ).inc()
        text = registry.to_prometheus()
        assert (
            'dmc_io_errors_total{kind="disk \\"full\\"\\non\\\\dev"} 1'
            in text
        )
        for line in text.splitlines():
            assert "\n" not in line  # escaping keeps one sample per line

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("dmc_odd_total", "line one\nline two\\three").inc()
        text = registry.to_prometheus()
        assert "# HELP dmc_odd_total line one\\nline two\\\\three" in text
        assert len(text.rstrip("\n").splitlines()) == 3  # HELP, TYPE, sample

    def test_label_sets_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("dmc_x_total", "x", zeta="1", alpha="2").inc()
        text = registry.to_prometheus()
        assert 'dmc_x_total{alpha="2",zeta="1"} 1' in text

    def test_integer_values_render_without_fraction(self):
        registry = MetricsRegistry()
        registry.gauge("dmc_g", "g").set(3.0)
        assert "dmc_g 3\n" in registry.to_prometheus()


class TestMergeDocument:
    def test_counters_sum_gauges_max_histograms_add(self):
        worker_a, worker_b, parent = (
            _filled_registry(), _filled_registry(), MetricsRegistry()
        )
        worker_b.gauge("dmc_live_candidates", scan="partial").set(3)
        parent.merge_document(worker_a.to_dict())
        parent.merge_document(worker_b.to_dict())
        assert parent.value(
            "dmc_rows_scanned_total", scan="partial"
        ) == 256
        assert parent.value("dmc_live_candidates", scan="partial") == 7
        merged = parent.get("dmc_task_seconds")
        assert merged.count == 10
        assert merged.counts == [2, 6, 8]
        assert merged.sum == pytest.approx(112.1)

    def test_gauge_only_merge_skips_counters_and_histograms(self):
        parent = MetricsRegistry()
        parent.merge_document(
            _filled_registry().to_dict(), kinds={"gauge"}
        )
        assert parent.value("dmc_rows_scanned_total", scan="partial") is None
        assert parent.get("dmc_task_seconds") is None
        assert parent.value("dmc_live_candidates", scan="partial") == 7

    def test_merged_exposition_stays_conformant(self):
        parent = MetricsRegistry()
        parent.merge_document(_filled_registry().to_dict())
        for line in parent.to_prometheus().rstrip("\n").splitlines():
            if not line.startswith("#"):
                assert SAMPLE_RE.match(line), line


class TestMetricsDelta:
    def test_counter_delta_subtracts_and_drops_zero(self):
        baseline = _filled_registry()
        current = _filled_registry()
        current.counter("dmc_rows_scanned_total", scan="partial").inc(72)
        delta = metrics_delta(current.to_dict(), baseline.to_dict())
        by_name = {f["name"]: f for f in delta["metrics"]}
        rows = by_name["dmc_rows_scanned_total"]["instances"]
        assert [record["value"] for record in rows] == [72]
        # Unchanged histogram deltas to zero observations.
        tasks = by_name.get("dmc_task_seconds")
        if tasks is not None:
            for record in tasks["instances"]:
                assert record["count"] == 0

    def test_gauges_pass_through_current_value(self):
        baseline = _filled_registry()
        current = _filled_registry()
        current.gauge("dmc_live_candidates", scan="partial").set(2)
        delta = metrics_delta(current.to_dict(), baseline.to_dict())
        by_name = {f["name"]: f for f in delta["metrics"]}
        gauge_records = by_name["dmc_live_candidates"]["instances"]
        assert [record["value"] for record in gauge_records] == [2]

    def test_delta_merges_back_to_current(self):
        baseline = _filled_registry()
        current = _filled_registry()
        current.counter("dmc_rows_scanned_total", scan="partial").inc(10)
        current.histogram(
            "dmc_task_seconds", buckets=(0.1, 1.0, 10.0)
        ).observe(0.5)
        rebuilt = MetricsRegistry()
        rebuilt.merge_document(baseline.to_dict())
        rebuilt.merge_document(
            metrics_delta(current.to_dict(), baseline.to_dict())
        )
        assert rebuilt.value(
            "dmc_rows_scanned_total", scan="partial"
        ) == current.value("dmc_rows_scanned_total", scan="partial")
        assert rebuilt.get("dmc_task_seconds").counts == (
            current.get("dmc_task_seconds").counts
        )


class TestThreadSafety:
    HAMMER_THREADS = 8
    HAMMER_ITERATIONS = 2_000

    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(self.HAMMER_ITERATIONS):
                registry.counter("dmc_hits_total", "hits").inc()
                registry.counter(
                    "dmc_hits_total", "hits", scan="partial"
                ).inc(2)

        threads = [
            threading.Thread(target=hammer)
            for _ in range(self.HAMMER_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = self.HAMMER_THREADS * self.HAMMER_ITERATIONS
        assert registry.value("dmc_hits_total") == total
        assert registry.value("dmc_hits_total", scan="partial") == 2 * total

    def test_concurrent_histogram_observations_are_exact(self):
        registry = MetricsRegistry()

        def hammer(worker: int):
            for index in range(self.HAMMER_ITERATIONS):
                registry.histogram(
                    "dmc_lat_seconds", "latency", buckets=(1.0, 10.0),
                ).observe(0.5 if index % 2 else 5.0)
                registry.gauge("dmc_peak", "peak").set_max(worker)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(self.HAMMER_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        histogram = registry.get("dmc_lat_seconds")
        total = self.HAMMER_THREADS * self.HAMMER_ITERATIONS
        assert histogram.count == total
        assert histogram.counts[0] == total // 2
        assert histogram.counts[1] == total
        assert registry.value("dmc_peak") == self.HAMMER_THREADS - 1

    def test_export_under_concurrent_mutation_is_consistent(self):
        """Exports taken mid-hammer parse and never tear a histogram.

        A torn read would show ``_count`` behind a bucket's cumulative
        count; holding the family lock during export forbids that.
        """
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def mutate():
            while not stop.is_set():
                registry.counter("dmc_n_total", "n").inc()
                registry.histogram(
                    "dmc_h_seconds", "h", buckets=(1.0,)
                ).observe(0.5)

        def scrape():
            try:
                for _ in range(200):
                    text = registry.to_prometheus()
                    for line in text.rstrip("\n").splitlines():
                        if not line.startswith("#"):
                            assert SAMPLE_RE.match(line), line
                    inf = re.search(
                        r'dmc_h_seconds_bucket\{le="\+Inf"\} (\d+)', text
                    )
                    count = re.search(r"dmc_h_seconds_count (\d+)", text)
                    if inf and count:
                        assert int(inf.group(1)) == int(count.group(1))
                    registry.to_dict()
            except AssertionError as error:  # surface to the main thread
                errors.append(error)

        mutators = [threading.Thread(target=mutate) for _ in range(4)]
        scraper = threading.Thread(target=scrape)
        for thread in mutators:
            thread.start()
        scraper.start()
        scraper.join()
        stop.set()
        for thread in mutators:
            thread.join()
        assert not errors
