"""The 0/1 matrix substrate (repro.matrix.binary_matrix)."""

import numpy as np
import pytest

from repro.matrix.binary_matrix import BinaryMatrix, Vocabulary


class TestConstruction:
    def test_rows_are_sorted_and_deduplicated(self):
        matrix = BinaryMatrix([[3, 1, 3]], n_columns=5)
        assert matrix.row(0) == (1, 3)

    def test_n_columns_inferred(self):
        matrix = BinaryMatrix([[0, 4], [2]])
        assert matrix.n_columns == 5

    def test_n_columns_too_small_rejected(self):
        with pytest.raises(ValueError):
            BinaryMatrix([[0, 4]], n_columns=3)

    def test_negative_column_rejected(self):
        with pytest.raises(ValueError):
            BinaryMatrix([[-1]])

    def test_empty_matrix(self):
        matrix = BinaryMatrix([])
        assert matrix.n_rows == 0
        assert matrix.n_columns == 0
        assert matrix.nnz == 0

    def test_from_dense_round_trip(self):
        dense = np.array([[1, 0, 1], [0, 0, 0], [1, 1, 1]], dtype=np.uint8)
        matrix = BinaryMatrix.from_dense(dense)
        assert np.array_equal(matrix.to_dense(), dense)

    def test_from_dense_requires_2d(self):
        with pytest.raises(ValueError):
            BinaryMatrix.from_dense(np.zeros(4))

    def test_from_transactions_builds_vocabulary(self):
        matrix = BinaryMatrix.from_transactions(
            [["bread", "butter"], ["butter", "jam"]]
        )
        assert matrix.n_columns == 3
        assert matrix.vocabulary.label_of(0) == "bread"
        assert matrix.row(1) == (1, 2)

    def test_from_edges(self):
        matrix = BinaryMatrix.from_edges(
            [(0, 1), (2, 0), (2, 1)], n_rows=3, n_columns=2
        )
        assert matrix.row(2) == (0, 1)
        assert matrix.row(1) == ()

    def test_from_column_sets(self):
        matrix = BinaryMatrix.from_column_sets([{0, 2}, {1}], n_rows=3)
        assert matrix.column_set(0) == {0, 2}
        assert matrix.column_set(1) == {1}


class TestViews:
    def test_column_ones(self):
        matrix = BinaryMatrix([[0, 1], [1], [1, 2]], n_columns=4)
        assert matrix.column_ones().tolist() == [1, 3, 1, 0]

    def test_column_sets(self):
        matrix = BinaryMatrix([[0, 1], [1]], n_columns=2)
        assert matrix.column_set(1) == {0, 1}

    def test_row_densities(self):
        matrix = BinaryMatrix([[0, 1, 2], [], [3]], n_columns=4)
        assert matrix.row_densities().tolist() == [3, 0, 1]

    def test_iter_rows_with_order(self):
        matrix = BinaryMatrix([[0], [1], [2]], n_columns=3)
        visited = [row for _, row in matrix.iter_rows(order=[2, 0])]
        assert visited == [(2,), (0,)]

    def test_nnz(self):
        matrix = BinaryMatrix([[0, 1], [], [2]], n_columns=3)
        assert matrix.nnz == 3

    def test_len_is_rows(self):
        assert len(BinaryMatrix([[0], [1]], n_columns=2)) == 2


class TestTransforms:
    def test_transpose_involution(self):
        matrix = BinaryMatrix([[0, 2], [1], []], n_columns=3)
        assert matrix.transpose().transpose() == matrix

    def test_transpose_shape(self):
        matrix = BinaryMatrix([[0, 2], [1]], n_columns=4)
        transposed = matrix.transpose()
        assert transposed.n_rows == 4
        assert transposed.n_columns == 2
        assert transposed.row(2) == (0,)

    def test_select_rows(self):
        matrix = BinaryMatrix([[0], [1], [2]], n_columns=3)
        selected = matrix.select_rows([2, 0])
        assert selected.row(0) == (2,)
        assert selected.n_columns == 3

    def test_restrict_columns_keeps_ids(self):
        matrix = BinaryMatrix([[0, 1, 2]], n_columns=3)
        restricted = matrix.restrict_columns([0, 2])
        assert restricted.row(0) == (0, 2)
        assert restricted.n_columns == 3

    def test_compact_columns_remaps(self):
        matrix = BinaryMatrix([[0, 2], [2]], n_columns=4)
        compacted, kept = matrix.compact_columns()
        assert kept == [0, 2]
        assert compacted.n_columns == 2
        assert compacted.row(0) == (0, 1)

    def test_compact_columns_remaps_vocabulary(self):
        matrix = BinaryMatrix.from_transactions([["a", "b"], ["b"]])
        compacted = matrix.prune_columns_by_support(min_ones=2)
        assert compacted.vocabulary.labels() == ("b",)

    def test_prune_columns_by_support_bounds(self):
        matrix = BinaryMatrix([[0, 1], [1], [1, 2]], n_columns=3)
        pruned = matrix.prune_columns_by_support(min_ones=1, max_ones=2)
        assert pruned.n_columns == 2  # column 1 (3 ones) removed

    def test_drop_empty_rows(self):
        matrix = BinaryMatrix([[0], [], [1]], n_columns=2)
        assert matrix.drop_empty_rows().n_rows == 2

    def test_to_csr_matches_dense(self):
        matrix = BinaryMatrix([[0, 2], [1]], n_columns=3)
        assert np.array_equal(
            matrix.to_csr().toarray(), matrix.to_dense()
        )

    def test_equality(self):
        assert BinaryMatrix([[0]], n_columns=2) == BinaryMatrix(
            [[0]], n_columns=2
        )
        assert BinaryMatrix([[0]], n_columns=2) != BinaryMatrix(
            [[0]], n_columns=3
        )

    def test_repr_mentions_shape(self):
        assert "n_rows=1" in repr(BinaryMatrix([[0]], n_columns=1))


class TestVocabulary:
    def test_add_is_idempotent(self):
        vocabulary = Vocabulary()
        assert vocabulary.add("x") == vocabulary.add("x") == 0

    def test_id_of_unknown_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("missing")

    def test_round_trip(self):
        vocabulary = Vocabulary(["a", "b"])
        assert vocabulary.label_of(vocabulary.id_of("b")) == "b"

    def test_len_contains_iter(self):
        vocabulary = Vocabulary(["a", "b"])
        assert len(vocabulary) == 2
        assert "a" in vocabulary
        assert list(vocabulary) == ["a", "b"]

    def test_equality(self):
        assert Vocabulary(["a"]) == Vocabulary(["a"])
        assert Vocabulary(["a"]) != Vocabulary(["b"])
