"""Live telemetry: /metrics endpoint, cross-process aggregation, and
the pruning curve.

The acceptance spine of the observability layer:

- a supervised ``workers=4`` partitioned run with injected faults (one
  worker crash, one retried corrupt result) merges worker telemetry
  into counters equal to the serial engine's, and the trace carries
  the workers' spans re-parented under ``task`` spans;
- ``/metrics`` answers mid-run with valid Prometheus text and the
  server shuts down cleanly on completion and on SIGTERM;
- ``PipelineStats.pruning_curve`` is populated for both rule kinds,
  non-increasing in live candidates once seeding ends, and its final
  point matches the end-of-run aggregates.
"""

import json
import signal
import socket
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import mine
from repro.core.dmc_imp import find_implication_rules
from repro.core.partitioned import find_implication_rules_partitioned
from repro.core.stats import PipelineStats
from repro.matrix.binary_matrix import BinaryMatrix
from repro.observe import (
    LiveRunStatus,
    MetricsRegistry,
    MetricsServer,
    ProgressObserver,
    RunObserver,
)
from repro.observe.server import PROMETHEUS_CONTENT_TYPE
from repro.runtime.faults import WorkerFault, WorkerFaultPlan
from tests.conftest import random_binary_matrix


def _matrix(seed: int = 7, rows: int = 80, cols: int = 16) -> BinaryMatrix:
    generator = np.random.default_rng(seed)
    dense = (generator.random((rows, cols)) < 0.3).astype(np.uint8)
    return BinaryMatrix.from_dense(dense)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


# ----------------------------------------------------------------------
# LiveRunStatus
# ----------------------------------------------------------------------


class TestLiveRunStatus:
    def test_snapshot_reflects_engine_writes(self):
        status = LiveRunStatus("run-7")
        status.set_phase("<100%-rules")
        status.on_rows(42)
        status.live_candidates = 9
        status.rules_emitted = 3
        status.set_worker_heartbeats({"0": 0.1, "1": 2.5})
        snapshot = status.snapshot()
        assert snapshot["run_id"] == "run-7"
        assert snapshot["phase"] == "<100%-rules"
        assert snapshot["rows_scanned"] == 42
        assert snapshot["live_candidates"] == 9
        assert snapshot["rules_emitted"] == 3
        assert snapshot["workers"] == {"0": 0.1, "1": 2.5}
        assert snapshot["finished"] is False
        json.dumps(snapshot)  # the /runs/<id> body must be JSON-ready

    def test_finish_records_failure(self):
        status = LiveRunStatus("run-7")
        status.finish(failed="KeyboardInterrupt: boom")
        assert status.finished
        assert status.failed == "KeyboardInterrupt: boom"


# ----------------------------------------------------------------------
# The HTTP endpoint
# ----------------------------------------------------------------------


class TestMetricsServer:
    def test_metrics_route_serves_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("dmc_rows_scanned_total", "Rows.").inc(5)
        with MetricsServer(registry) as server:
            code, headers, body = _get(server.url + "/metrics")
        assert code == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE dmc_rows_scanned_total counter" in text
        assert "dmc_rows_scanned_total 5" in text

    def test_healthz_route_reports_run_liveness(self):
        status = LiveRunStatus("run-9")
        status.set_phase("partition-mining")
        status.set_worker_heartbeats({"0": 0.2, "1": 99.0})
        with MetricsServer(MetricsRegistry(), status=status) as server:
            code, headers, body = _get(server.url + "/healthz")
        assert code == 200
        assert headers["Content-Type"] == "application/json"
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["phase"] == "partition-mining"
        assert document["stale_workers"] == ["1"]

    def test_healthz_without_status_is_plain_ok(self):
        with MetricsServer(MetricsRegistry()) as server:
            code, _, body = _get(server.url + "/healthz")
        assert code == 200
        assert json.loads(body) == {"status": "ok", "run": None}

    def test_runs_route_serves_the_snapshot_or_404(self):
        status = LiveRunStatus("run-17")
        with MetricsServer(MetricsRegistry(), status=status) as server:
            code, _, body = _get(server.url + "/runs/run-17")
            assert code == 200
            assert json.loads(body)["run_id"] == "run-17"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/runs/other-run")
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["error"] == (
                "unknown run"
            )

    def test_unknown_route_is_404(self):
        with MetricsServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_close_is_idempotent_and_releases_the_port(self):
        server = MetricsServer(MetricsRegistry())
        host, port = server.host, server.port
        server.close()
        server.close()  # idempotent
        assert server.closed
        with pytest.raises(OSError):
            connection = socket.create_connection((host, port), timeout=1)
            connection.close()


# ----------------------------------------------------------------------
# Mid-run scraping and shutdown through repro.mine()
# ----------------------------------------------------------------------


class _MidRunScraper(ProgressObserver):
    """Scrapes the run's own endpoint from inside a progress callback."""

    def __init__(self) -> None:
        self.observer = None  # set after the RunObserver wraps us
        self.scrapes = []

    def on_curve_sample(self, *args, **kwargs) -> None:
        if self.scrapes or self.observer is None:
            return
        server = getattr(self.observer, "server", None)
        if server is None:
            return
        self.scrapes.append(
            (
                _get(server.url + "/metrics"),
                _get(server.url + "/healthz"),
                _get(server.url + f"/runs/{self.observer.run_id}"),
            )
        )


class TestServedRuns:
    def test_mid_run_scrape_and_clean_shutdown_on_completion(self):
        matrix = _matrix(rows=300, cols=14)
        scraper = _MidRunScraper()
        observer = RunObserver(progress=scraper)
        scraper.observer = observer
        result = mine(
            matrix, minconf=0.25, observer=observer, serve_metrics_port=0,
        )
        assert result.rules
        assert scraper.scrapes, "no mid-run scrape happened"
        (metrics, healthz, run_doc), = scraper.scrapes
        code, headers, body = metrics
        assert code == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE dmc_live_candidates gauge" in text
        code, _, body = healthz
        assert code == 200
        assert json.loads(body)["finished"] is False
        code, _, body = run_doc
        assert json.loads(body)["run_id"] == result.run_id
        # Completion closed the server and released the port.
        server = observer.server
        assert server.closed
        with pytest.raises(OSError):
            connection = socket.create_connection(
                (server.host, server.port), timeout=1
            )
            connection.close()

    def test_sigterm_unwinds_cleanly(self, tmp_path):
        """SIGTERM mid-run closes the server and journals the failure."""
        matrix = _matrix(rows=300, cols=14)
        journal_path = str(tmp_path / "run.jsonl")

        class Terminator(ProgressObserver):
            fired = False

            def on_curve_sample(self, *args, **kwargs) -> None:
                if not self.fired:
                    Terminator.fired = True
                    signal.raise_signal(signal.SIGTERM)

        observer = RunObserver(progress=Terminator())
        with pytest.raises(KeyboardInterrupt):
            mine(
                matrix, minconf=0.7, observer=observer,
                serve_metrics_port=0, journal_path=journal_path,
            )
        assert observer.server.closed
        assert observer.status.finished
        assert "KeyboardInterrupt" in observer.status.failed
        from repro.observe import read_journal

        records = list(read_journal(journal_path))
        assert records[-1]["event"] == "run-end"
        assert "KeyboardInterrupt" in records[-1]["failed"]


# ----------------------------------------------------------------------
# Cross-process aggregation under faults (the acceptance test)
# ----------------------------------------------------------------------


def _find_spans(spans, name):
    found = []
    for span in spans:
        if span.name == name:
            found.append(span)
        found.extend(_find_spans(span.children, name))
    return found


class TestWorkerTelemetry:
    PARTITION_COUNTERS = (
        "dmc_rows_scanned_total",
        "dmc_candidates_added_total",
        "dmc_rules_emitted_total",
    )

    @pytest.mark.timeout(180)
    def test_merged_metrics_equal_serial_under_faults(self):
        """workers=4 with one crash and one retried corrupt result."""
        matrix = _matrix()
        serial_observer = RunObserver()
        serial_stats = PipelineStats()
        want = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=None,
            stats=serial_stats, observer=serial_observer,
        ).pairs()
        assert want == find_implication_rules(matrix, 0.7).pairs()

        plan = WorkerFaultPlan(faults=(
            WorkerFault(
                mode="crash", task_id="implication-part-0001", attempts=1,
            ),
            WorkerFault(
                mode="corrupt", task_id="implication-part-0002", attempts=1,
            ),
        ))
        pool_observer = RunObserver()
        pool_stats = PipelineStats()
        got = find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=4,
            stats=pool_stats, observer=pool_observer, worker_faults=plan,
        ).pairs()
        assert got == want
        assert pool_stats.task_retries >= 2  # the crash and the corrupt
        assert pool_stats.worker_restarts >= 1

        # Merged worker counters equal the serial engine's, exactly:
        # failed attempts' telemetry never lands, accepted attempts'
        # lands once.
        for name in self.PARTITION_COUNTERS:
            serial_value = serial_observer.metrics.value(
                name, scan="partition"
            )
            pool_value = pool_observer.metrics.value(name, scan="partition")
            assert serial_value is not None, name
            assert pool_value == serial_value, name
        rows_scanned = pool_observer.metrics.value(
            "dmc_rows_scanned_total", scan="partition"
        )
        # Pruning may stop a partition's scan early, so the total is
        # bounded by the matrix, not equal to it.
        assert 0 < rows_scanned <= matrix.n_rows

        # Task accounting: every partition completed exactly once.
        completed = 0.0
        for path in ("pool", "quarantine"):
            completed += pool_observer.metrics.value(
                "dmc_tasks_completed_total", path=path
            ) or 0.0
        assert completed == 4

    @pytest.mark.timeout(180)
    def test_worker_spans_are_reparented_into_the_trace(self):
        matrix = _matrix()
        observer = RunObserver()
        find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=4, observer=observer,
        )
        task_spans = _find_spans(observer.tracer.spans, "task")
        assert len(task_spans) == 4
        task_ids = {span.attributes["task_id"] for span in task_spans}
        assert task_ids == {
            f"implication-part-{index:04d}" for index in range(4)
        }
        for span in task_spans:
            assert "worker_id" in span.attributes
            assert span.attributes["attempt"] >= 1
            scans = _find_spans(span.children, "partition-scan")
            assert len(scans) == 1  # the worker's own span, re-parented
            assert scans[0].attributes["worker_id"] == (
                span.attributes["worker_id"]
            )

    @pytest.mark.timeout(180)
    def test_healthz_worker_heartbeats_populate_during_pool_runs(self):
        matrix = _matrix()
        observer = RunObserver(status=LiveRunStatus("run-hb"))
        find_implication_rules_partitioned(
            matrix, 0.7, n_partitions=4, n_workers=2, observer=observer,
        )
        heartbeats = observer.status.worker_heartbeats()
        assert heartbeats, "no heartbeat sweep reached the status"
        for age in heartbeats.values():
            assert age == -1.0 or age >= 0.0


# ----------------------------------------------------------------------
# The pruning curve (Algorithm 3.1's candidate-decay story)
# ----------------------------------------------------------------------


class TestPruningCurve:
    @pytest.mark.parametrize("kwargs", [
        {"minconf": 0.7}, {"minsim": 0.4},
    ])
    def test_curve_is_populated_and_self_consistent(self, kwargs):
        matrix = random_binary_matrix(13, max_rows=250, max_columns=12)
        result = mine(matrix, **kwargs)
        curve = result.stats.pruning_curve
        assert curve, "pruning curve is empty"
        scan = result.stats.partial_scan
        rows = [point[0] for point in curve]
        live = [point[1] for point in curve]
        misses = [point[2] for point in curve]
        rules = [point[3] for point in curve]
        assert rows == sorted(rows)
        # Live candidates grow while lists are still being seeded, then
        # pruning only shrinks them: non-increasing from the peak on.
        peak = live.index(max(live))
        assert live[peak:] == sorted(live[peak:], reverse=True)
        assert misses == sorted(misses)
        assert rules == sorted(rules)
        # The final point is the end-of-run aggregate state.
        assert rows[-1] == scan.rows_scanned
        assert misses[-1] == scan.misses_recorded
        assert rules[-1] == scan.rules_emitted

    def test_curve_appears_in_the_metrics_registry(self):
        matrix = random_binary_matrix(13, max_rows=250, max_columns=12)
        observer = RunObserver()
        result = mine(matrix, minconf=0.7, observer=observer)
        value = observer.metrics.value(
            "dmc_live_candidates", scan="<100%-rules"
        )
        assert value is not None
        # The gauge holds the curve's final live-candidate count.
        assert value == result.stats.pruning_curve[-1][1]


# ----------------------------------------------------------------------
# Distributed-node telemetry on /healthz
# ----------------------------------------------------------------------


class TestNodeTelemetry:
    def test_healthz_serves_the_node_table_with_dead_rows(self):
        """/healthz must answer mid-re-dispatch reporting the dead node
        while its shard is being handed to a live one."""
        status = LiveRunStatus("run-21")
        status.set_node_table({
            "agent-a": {
                "node_id": "agent-a", "alive": True,
                "beat_age_seconds": 0.1, "task": "implication-part-0002",
            },
            "agent-b": {
                "node_id": "agent-b", "alive": False,
                "beat_age_seconds": 7.3, "task": "implication-part-0001",
            },
        })
        with MetricsServer(MetricsRegistry(), status=status) as server:
            code, _, body = _get(server.url + "/healthz")
        assert code == 200
        document = json.loads(body)
        assert document["dead_nodes"] == ["agent-b"]
        assert document["nodes"]["agent-a"]["alive"] is True
        assert document["nodes"]["agent-b"]["task"] == (
            "implication-part-0001"
        )

    def test_healthz_omits_node_rows_for_local_runs(self):
        status = LiveRunStatus("run-22")
        with MetricsServer(MetricsRegistry(), status=status) as server:
            code, _, body = _get(server.url + "/healthz")
        assert code == 200
        document = json.loads(body)
        assert "nodes" not in document
        assert "dead_nodes" not in document


class _NodeScraper(ProgressObserver):
    """Scrapes /healthz from inside distributed-run callbacks."""

    def __init__(self) -> None:
        self.observer = None
        self.healthz = []
        self.redispatches = []

    def _scrape(self) -> None:
        server = getattr(self.observer, "server", None)
        if server is None or server.closed:
            return
        code, _, body = _get(server.url + "/healthz")
        self.healthz.append((code, json.loads(body)))

    def on_node_redispatch(self, task_id, token, node) -> None:
        self.redispatches.append((task_id, token))
        self._scrape()

    def on_node_status(self, nodes) -> None:
        self._scrape()


class TestDistributedTelemetry:
    @pytest.mark.timeout(180)
    def test_healthz_keeps_serving_through_a_node_kill(self, tmp_path):
        """A node dies holding a shard: the endpoint keeps answering
        through re-dispatch, and the dead node shows up in its table."""
        from repro.runtime.faults import NetworkFault, NetworkFaultPlan
        from repro.runtime.transport import RemoteTransport

        matrix = _matrix(rows=80, cols=16)
        plan = NetworkFaultPlan(faults=(
            NetworkFault("kill", task_id="implication-part-0001"),
        ))
        # node_stale below the lease TTL: the killed agent's frozen
        # beat reads as dead from the re-dispatch scrapes onwards.
        transport = RemoteTransport(
            str(tmp_path / "ledger"), nodes=2,
            lease_ttl=0.5, poll_interval=0.02, node_stale=0.35,
            network_faults=plan,
        )
        scraper = _NodeScraper()
        observer = RunObserver(progress=scraper)
        scraper.observer = observer
        result = mine(
            matrix, minconf=0.7, transport=transport, n_partitions=4,
            observer=observer, serve_metrics_port=0,
        )
        want = find_implication_rules(matrix, 0.7).pairs()
        assert result.rules.pairs() == want
        assert scraper.healthz, "no mid-run /healthz scrape happened"
        assert all(code == 200 for code, _ in scraper.healthz)
        # The killed agent's beat went stale: some scrape (at the
        # latest, the final node-table notification) lists it dead.
        assert any(
            document.get("dead_nodes") for _, document in scraper.healthz
        ), f"no dead node ever reported: {scraper.healthz!r}"
        # ...and the run's own status object ends with the node table.
        assert observer.status.node_table()

    @pytest.mark.timeout(180)
    def test_metrics_scrape_during_pool_worker_crash(self):
        """/metrics answers while the pool is mid-fault (a crashed
        worker being replaced and its task re-dispatched)."""
        matrix = _matrix(rows=80, cols=16)
        plan = WorkerFaultPlan(faults=(
            WorkerFault(
                mode="crash", task_id="implication-part-0001", attempts=1,
            ),
        ))

        class CrashScraper(ProgressObserver):
            def __init__(self) -> None:
                self.server = None
                self.scrapes = []

            def on_task_retry(self, task_id, reason) -> None:
                code, _, body = _get(self.server.url + "/metrics")
                self.scrapes.append((code, body.decode("utf-8")))

            def on_worker_restart(self, worker_id, reason) -> None:
                self.on_task_retry(str(worker_id), reason)

        scraper = CrashScraper()
        observer = RunObserver(progress=scraper)
        stats = PipelineStats()
        with MetricsServer(
            observer.metrics, status=observer.status
        ) as server:
            scraper.server = server
            rules = find_implication_rules_partitioned(
                matrix, 0.7, n_partitions=4, n_workers=2,
                worker_faults=plan, stats=stats, observer=observer,
            )
            code, _, _ = _get(server.url + "/metrics")
            assert code == 200  # still serving after the fault run
        want = find_implication_rules(matrix, 0.7).pairs()
        assert rules.pairs() == want
        assert stats.worker_restarts >= 1
        assert scraper.scrapes, "no mid-fault scrape happened"
        assert all(code == 200 for code, _ in scraper.scrapes)
