"""The command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.scale == 1.0
        assert args.seed == 0

    def test_experiment_options(self):
        args = build_parser().parse_args(
            ["fig4", "--scale", "0.5", "--seed", "9"]
        )
        assert args.scale == 0.5
        assert args.seed == 9

    def test_mine_imp_options(self):
        args = build_parser().parse_args(
            ["mine-imp", "data.txt", "--minconf", "0.8", "--limit", "5"]
        )
        assert args.path == "data.txt"
        assert args.minconf == 0.8
        assert args.limit == 5

    def test_supervised_worker_options(self):
        args = build_parser().parse_args(
            ["mine-imp", "data.txt", "--workers", "3", "--partitions",
             "6", "--task-timeout", "5", "--task-retries", "1",
             "--ledger", "/tmp/ledger"]
        )
        assert args.workers == 3
        assert args.partitions == 6
        assert args.task_timeout == 5.0
        assert args.task_retries == 1
        assert args.ledger == "/tmp/ledger"

    def test_storage_options(self):
        args = build_parser().parse_args(
            ["mine-imp", "data.txt", "--no-spill-degrade",
             "--preflight-disk"]
        )
        assert args.no_spill_degrade is True
        assert args.preflight_disk is True
        defaults = build_parser().parse_args(["mine-imp", "data.txt"])
        assert defaults.no_spill_degrade is False
        assert defaults.preflight_disk is False

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExperimentCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_runs_table1(self, capsys):
        assert main(["table1", "--scale", "0.2"]) == 0
        assert "plinkF" in capsys.readouterr().out

    def test_runs_fig4_small(self, capsys):
        assert main(["fig4", "--scale", "0.2"]) == 0
        assert "Column density" in capsys.readouterr().out


class TestMiningCommands:
    @pytest.fixture
    def transactions_file(self, tmp_path):
        from repro.matrix.binary_matrix import BinaryMatrix
        from repro.matrix.io import save_transactions

        matrix = BinaryMatrix.from_transactions(
            [["a", "b"], ["a", "b"], ["a", "b", "c"], ["c"]]
        )
        path = str(tmp_path / "data.txt")
        save_transactions(matrix, path)
        return path

    def test_mine_imp(self, capsys, transactions_file):
        assert main(["mine-imp", transactions_file, "--minconf", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "a -> b" in out or "b -> a" in out

    def test_mine_sim(self, capsys, transactions_file):
        assert main(["mine-sim", transactions_file, "--minsim", "0.9"]) == 0
        assert "~" in capsys.readouterr().out

    def test_limit_truncates(self, capsys, transactions_file):
        assert main(
            ["mine-imp", transactions_file, "--minconf", "0.5",
             "--limit", "1"]
        ) == 0
        assert "more" in capsys.readouterr().out

    def test_missing_file(self, capsys, tmp_path):
        assert main(["mine-imp", str(tmp_path / "nope.txt")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_preflight_disk_on_healthy_disk_mines_normally(
        self, capsys, tmp_path
    ):
        path = str(tmp_path / "numeric.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("0 1\n0 1\n0 1 2\n2\n")
        code = main(
            ["mine-imp", path, "--minconf", "0.9",
             "--stream", "--preflight-disk"]
        )
        assert code == 0
        assert "->" in capsys.readouterr().out

    def test_workers_conflicts_with_stream(self, capsys, transactions_file):
        code = main(
            ["mine-imp", transactions_file, "--stream", "--workers", "2"]
        )
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_ledger_conflicts_with_checkpoint(
        self, capsys, transactions_file, tmp_path
    ):
        code = main(
            ["mine-imp", transactions_file,
             "--checkpoint", str(tmp_path / "c"),
             "--ledger", str(tmp_path / "l")]
        )
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err

    @pytest.mark.slow
    def test_supervised_workers_match_serial(
        self, capsys, transactions_file
    ):
        assert main(
            ["mine-imp", transactions_file, "--minconf", "0.9"]
        ) == 0
        serial = capsys.readouterr().out
        assert main(
            ["mine-imp", transactions_file, "--minconf", "0.9",
             "--workers", "2", "--partitions", "2"]
        ) == 0
        assert capsys.readouterr().out == serial


class TestGenerateCommand:
    def test_generate_then_mine(self, capsys, tmp_path):
        out = str(tmp_path / "dicd.txt")
        assert main(
            ["generate", "dicD", "--out", out, "--scale", "0.3"]
        ) == 0
        assert "wrote dicD" in capsys.readouterr().out
        assert main(["mine-sim", out, "--minsim", "0.7"]) == 0

    def test_unknown_dataset(self, capsys, tmp_path):
        code = main(
            ["generate", "nope", "--out", str(tmp_path / "x.txt")]
        )
        assert code == 2
        assert "unknown data set" in capsys.readouterr().err
