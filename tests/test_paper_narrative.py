"""Every checkable statement from the paper's prose, as a test.

One test per quoted claim, organized by paper section, so a reader can
trace the reproduction sentence by sentence.
"""

from fractions import Fraction

from repro.core.policies import ImplicationPolicy, SimilarityPolicy
from repro.core.thresholds import (
    as_fraction,
    confidence_removal_cutoff,
    max_misses,
    pair_max_misses,
    similarity_removal_cutoff,
)
from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.reorder import density_buckets


class TestSection2ProblemStatement:
    def test_sparser_antecedent_has_higher_confidence(self):
        """'if |S_i| < |S_j| then Conf(c_j, c_i) < Conf(c_i, c_j)'."""
        from repro.baselines.bruteforce import confidence_of

        matrix = BinaryMatrix(
            [[0, 1], [0, 1], [1], [1], [0]], n_columns=2
        )
        # |S_0| = 3 < |S_1| = 4.
        assert confidence_of(matrix, 0, 1) > confidence_of(matrix, 1, 0)

    def test_similarity_is_symmetric(self):
        """'this definition is symmetric with respect to c_i and c_j'."""
        from repro.baselines.bruteforce import similarity_of

        matrix = BinaryMatrix([[0, 1], [0], [1, 0]], n_columns=2)
        assert similarity_of(matrix, 0, 1) == similarity_of(matrix, 1, 0)


class TestSection1Examples:
    def test_example_1_3_fifteen_misses(self):
        """'a column with 100 1s at 85% ... misses must not be more
        than 15'."""
        assert max_misses(100, as_fraction(0.85)) == 15

    def test_example_1_3_no_new_counters_after_16_rows(self):
        """'we do not have to add a new counter for c_i after we have
        seen 16 rows in which c_i is set to 1'."""
        policy = ImplicationPolicy([100, 150], 0.85)
        # After 16 rows, cnt = 16 > add cutoff 15.
        assert policy.add_cutoff(0) == 15


class TestSection31AprioriCriticism:
    def test_figure1_data_defeats_support_pruning(self):
        """'with minsup 50% ... no candidate pairs can be pruned by
        a-priori, and it requires m(m-1)/2 counters'."""
        from repro.baselines.apriori import apriori_pair_rules
        from tests.conftest import EXAMPLE12_ROWS

        matrix = BinaryMatrix(EXAMPLE12_ROWS, n_columns=3)
        # All columns have >= 50% support in the Figure 1 style data?
        # (Our Example 1.2 matrix has a low-support column; use the
        # claim's structure instead: all columns frequent.)
        dense = BinaryMatrix(
            [[0, 1, 2], [0, 1], [1, 2], [0, 2]], n_columns=3
        )
        minsup = dense.n_rows // 2
        result = apriori_pair_rules(dense, 0.85, minsup_count=minsup)
        assert len(result.frequent_columns) == 3
        assert result.counters_used == 3 * 2 // 2
        assert matrix.n_columns == 3  # fixture sanity

    def test_paper_counter_count_for_weblink(self):
        """'about 700,000 columns, and even if we prune ... 58,000
        columns ... about 1.7 billion counters' — the quadratic model
        the AprioriResult reports."""
        n = 58_000
        assert n * (n - 1) // 2 == 1_681_971_000  # ~1.7 billion


class TestSection41RowReordering:
    def test_bucket_ranges_are_powers_of_two(self):
        """'we divide the original data according to the number of 1's
        in each row with ranges of [2^i, 2^{i+1})'."""
        matrix = BinaryMatrix(
            [[0], [0, 1], [0, 1, 2, 3], [0, 1, 2]], n_columns=4
        )
        buckets = density_buckets(matrix)
        assert buckets[0] == [0]       # density 1
        assert buckets[1] == [1, 3]    # densities 2, 3
        assert buckets[2] == [2]       # density 4

    def test_bucket_count_bound(self):
        """'the number of buckets is no more than ceil(log2 m) + 1'."""
        import math

        for m in (3, 64, 1000):
            matrix = BinaryMatrix([list(range(m))], n_columns=m)
            assert len(density_buckets(matrix)) <= (
                math.ceil(math.log2(m)) + 1
            )


class TestSection43HundredPercentPruning:
    def test_cutoff_statement_at_90_percent(self):
        """'Suppose we want 90% or more ... a column that has fewer
        than 9 1's must have no miss' — the paper's number is off by
        one; the exact statement is 'fewer than 10'."""
        minconf = Fraction(9, 10)
        assert max_misses(9, minconf) == 0
        assert max_misses(10, minconf) == 1  # the boundary the paper's
        # prose (and its removal cutoff) gets wrong
        assert confidence_removal_cutoff(minconf) == 9


class TestSection5Similarity:
    def test_column_density_bound_chain(self):
        """'minsim <= Sim <= |S_i|/|S_j| <= 1' (Section 5.1)."""
        from repro.baselines.bruteforce import similarity_of

        matrix = BinaryMatrix(
            [[0, 1], [0, 1], [1], [1], [1]], n_columns=2
        )
        sim = similarity_of(matrix, 0, 1)
        ratio = Fraction(2, 5)  # |S_0| / |S_1|
        assert sim <= ratio <= 1

    def test_example_5_1_maximum_similarity_bound(self):
        """'the maximum possible number of hits is at most 3, and the
        maximum possible similarity is 0.5'."""
        # ones(c1)=4, ones(c2)=5; before r4: cnt1=1, cnt2=3, 1 hit.
        hits_so_far = 1
        remaining_1 = 4 - 1
        remaining_2 = 5 - 3
        max_hits = hits_so_far + min(remaining_1, remaining_2)
        assert max_hits == 3
        max_sim = Fraction(max_hits, 4 + 5 - max_hits)
        assert max_sim == Fraction(1, 2)

    def test_cutoff_statement_in_step3(self):
        """'Remove columns such that ones <= 1/(1-minsim) - 1 ...
        there might be less-than-100% similar pairs between columns
        whose number of 1's are [1/(1-minsim)] - 1 and [1/(1-minsim)]'
        — checked against the exact cutoff."""
        minsim = Fraction(3, 4)
        # Paper's cutoff: 1/(1-3/4) - 1 = 3; exact cutoff is 2
        # because a (3,4)-pair sharing all three rows hits 3/4 exactly.
        assert similarity_removal_cutoff(minsim) == 2
        assert pair_max_misses(3, 4, minsim) == 0  # achievable


class TestSection44SwitchRule:
    def test_paper_switch_parameters_are_defaults(self):
        """'we switch ... when the number of remaining rows becomes 64
        or less, and the memory size ... exceeds 50MB'."""
        from repro.core.miss_counting import BitmapConfig

        config = BitmapConfig()
        assert config.switch_rows == 64
        assert config.memory_budget_bytes == 50 * 2**20

    def test_no_switch_while_many_rows_remain(self):
        """'even if the memory size exceeds 50MB, we do not switch ...
        if the number of remaining rows is more than 64'."""
        from repro.core.miss_counting import (
            BitmapConfig,
            miss_counting_scan,
        )
        from repro.core.stats import ScanStats

        matrix = BinaryMatrix(
            [[0, 1, 2]] * 100, n_columns=3
        )
        policy = ImplicationPolicy(matrix.column_ones(), 0.9)
        stats = ScanStats()
        miss_counting_scan(
            matrix,
            policy,
            bitmap=BitmapConfig(switch_rows=10, memory_budget_bytes=0),
            stats=stats,
        )
        assert stats.bitmap_switch_at == 90  # only inside the window


class TestSection62ExperimentSetup:
    def test_newsp_support_thresholds(self):
        """'minimum support threshold 35 (0.2%) and maximum support
        threshold 3278 (20%)' — the percentages check out."""
        assert round(0.002 * 16392) == 33  # the paper rounds to 35
        assert round(0.20 * 16392) == 3278

    def test_similarity_policy_add_cutoff_never_negative(self):
        policy = SimilarityPolicy([1, 5, 100], 0.75)
        for column in range(3):
            assert policy.add_cutoff(column) >= 0
