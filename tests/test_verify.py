"""Rule verification helpers (repro.mining.verify)."""

from repro.core.rules import ImplicationRule, RuleSet, SimilarityRule
from repro.matrix.binary_matrix import BinaryMatrix
from repro.mining.verify import (
    check_no_false_negatives,
    check_no_false_positives,
    verify_implication_rules,
    verify_similarity_rules,
)


def _matrix():
    return BinaryMatrix([[0, 1], [0, 1], [0]], n_columns=2)


class TestVerifyImplication:
    def test_correct_rule_passes(self):
        # Canonical rule: ones(1)=2 < ones(0)=3, conf(1=>0) = 1.
        rule = ImplicationRule(1, 0, hits=2, ones=2)
        assert verify_implication_rules(_matrix(), [rule], 1) == []

    def test_wrong_statistics_reported(self):
        rule = ImplicationRule(1, 0, hits=1, ones=2)
        problems = verify_implication_rules(_matrix(), [rule], 0.5)
        assert len(problems) == 1
        assert "recomputed" in problems[0]

    def test_below_threshold_reported(self):
        rule = ImplicationRule(0, 1, hits=2, ones=3)
        problems = verify_implication_rules(_matrix(), [rule], 0.9)
        assert len(problems) == 1
        assert "below threshold" in problems[0]


class TestVerifySimilarity:
    def test_correct_rule_passes(self):
        rule = SimilarityRule(1, 0, intersection=2, union=3)
        assert verify_similarity_rules(_matrix(), [rule], 0.5) == []

    def test_wrong_statistics_reported(self):
        rule = SimilarityRule(1, 0, intersection=3, union=3)
        assert (
            len(verify_similarity_rules(_matrix(), [rule], 0.5)) == 1
        )

    def test_below_threshold_reported(self):
        rule = SimilarityRule(1, 0, intersection=2, union=3)
        problems = verify_similarity_rules(_matrix(), [rule], 0.9)
        assert "below threshold" in problems[0]


class TestSetComparisons:
    def test_false_positive_detection(self):
        produced = RuleSet([ImplicationRule(0, 1, 1, 1)])
        truth = RuleSet()
        assert check_no_false_positives(produced, truth) == {(0, 1)}
        assert check_no_false_negatives(produced, truth) == set()

    def test_false_negative_detection(self):
        produced = RuleSet()
        truth = RuleSet([ImplicationRule(0, 1, 1, 1)])
        assert check_no_false_negatives(produced, truth) == {(0, 1)}

    def test_agreement_is_empty_both_ways(self):
        rules = RuleSet([ImplicationRule(0, 1, 1, 1)])
        assert check_no_false_positives(rules, rules) == set()
        assert check_no_false_negatives(rules, rules) == set()
