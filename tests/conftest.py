"""Shared fixtures: paper-derived example matrices and random generators."""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.matrix.binary_matrix import BinaryMatrix

#: Watchdog for any single test when pytest-timeout is unavailable.
DEFAULT_TEST_TIMEOUT = 120.0


def _watchdog_seconds(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    return DEFAULT_TEST_TIMEOUT


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """A SIGALRM per-test watchdog when pytest-timeout is not installed.

    The supervisor tests exercise hang recovery with real spawned
    processes; a regression there must fail the test, not wedge the
    whole suite.  Defers to the real pytest-timeout plugin when
    present, and is a no-op off POSIX or off the main thread (SIGALRM
    cannot be delivered there).
    """
    if (
        item.config.pluginmanager.hasplugin("timeout")
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    seconds = _watchdog_seconds(item)

    def _alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds:g}s watchdog (SIGALRM fallback)"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (extended fault-injection sweeps)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


# ----------------------------------------------------------------------
# The Figure 2 / Example 3.1 matrix, reconstructed from the paper.
#
# The paper's figure is not reproducible verbatim (the image is
# unavailable), but its narrative fixes most of the matrix: 9 rows, 6
# columns, 5 ones per column, r1 = {c2,c6}, r2 = {c3,c4,c5},
# r3 = {c3,c5}, r4 = {c1,c2,c3,c6}, the pre-r4 candidate state, the
# sparsest-first order (r1,r3,r8,r2,r5,r4,r6,r9,r7), and the total
# candidate-count histories.  A constraint search over the remaining
# free rows produced the assignment below, which reproduces the
# narrative through r4, the final rules {c1=>c2, c3=>c5}, and the
# paper's sparsest-first history (1,2,3,5,6,8,5,2,*) — the last entry
# differs only because this implementation frees a candidate list the
# moment its rules are emitted.
# ----------------------------------------------------------------------

#: Rows of the Example 3.1 matrix, 0-indexed columns (paper c1..c6).
EXAMPLE31_ROWS = (
    (1, 5),              # r1 = {c2, c6}
    (2, 3, 4),           # r2 = {c3, c4, c5}
    (2, 4),              # r3 = {c3, c5}
    (0, 1, 2, 5),        # r4 = {c1, c2, c3, c6}
    (0, 3, 5),           # r5 = {c1, c4, c6}
    (0, 1, 3, 4),        # r6 = {c1, c2, c4, c5}
    (0, 1, 2, 3, 4, 5),  # r7 = all columns
    (3, 5),              # r8 = {c4, c6}
    (0, 1, 2, 4),        # r9 = {c1, c2, c3, c5}
)

#: The paper's sparsest-first scan order (0-indexed row ids).
EXAMPLE31_SPARSEST_ORDER = (0, 2, 7, 1, 4, 3, 5, 8, 6)

#: The rules Example 3.1 reports at 80% confidence (0-indexed).
EXAMPLE31_RULES = {(0, 1), (2, 4)}


@pytest.fixture
def example31() -> BinaryMatrix:
    """The reconstructed Figure 2 matrix."""
    return BinaryMatrix(EXAMPLE31_ROWS, n_columns=6)


# ----------------------------------------------------------------------
# The Figure 1 / Example 1.2 matrix.
#
# Example 1.2's narrative: at r1 the candidates are {c2=>c3, c3=>c2};
# r2 adds {c1=>c2, c1=>c3} (c2=>c1 / c3=>c2... have already missed);
# r3 kills c1=>c2 and c1=>c3; after all rows only c3=>c2 survives at
# 100% confidence.  The matrix below satisfies that trace with
# ones(c1)=2 < ones(c3)=3 < ones(c2)=4.
# ----------------------------------------------------------------------

EXAMPLE12_ROWS = (
    (1, 2),     # r1 = {c2, c3}: candidates c2<->c3 both directions
    (0, 1, 2),  # r2 = {c1, c2, c3}: adds c1=>c2, c1=>c3
    (0,),       # r3 = {c1}: kills c1=>c2 and c1=>c3
    (1, 2),     # r4 = {c2, c3}
    (1,),       # r5 = {c2}: a miss for c3 is never created; c3 absent
)

EXAMPLE12_100_RULES = {(2, 1)}  # c3 => c2 is the only 100% rule


@pytest.fixture
def example12() -> BinaryMatrix:
    """The Figure 1-style matrix of Example 1.2."""
    return BinaryMatrix(EXAMPLE12_ROWS, n_columns=3)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test-local sampling."""
    return np.random.default_rng(12345)


def random_binary_matrix(
    seed: int,
    max_rows: int = 40,
    max_columns: int = 14,
) -> BinaryMatrix:
    """A small random matrix for oracle-comparison tests."""
    generator = np.random.default_rng(seed)
    n = int(generator.integers(2, max_rows))
    m = int(generator.integers(2, max_columns))
    density = float(generator.uniform(0.05, 0.6))
    dense = (generator.random((n, m)) < density).astype(np.uint8)
    return BinaryMatrix.from_dense(dense)
