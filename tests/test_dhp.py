"""DHP hash-pruned pair mining (repro.baselines.dhp)."""

from repro.baselines.apriori import apriori_pair_rules
from repro.baselines.dhp import dhp_pair_rules
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


class TestAgreementWithApriori:
    def test_same_rules_as_pair_support_apriori(self):
        for seed in range(10):
            matrix = random_binary_matrix(seed)
            for minsup in (1, 2, 3):
                want = apriori_pair_rules(
                    matrix,
                    0.6,
                    minsup_count=minsup,
                    require_pair_support=True,
                ).rules.pairs()
                got = dhp_pair_rules(
                    matrix, 0.6, minsup_count=minsup
                ).rules.pairs()
                assert got == want, (seed, minsup)

    def test_tiny_bucket_count_still_correct(self):
        """With few buckets the filter passes more pairs but never
        rejects a frequent one."""
        matrix = random_binary_matrix(30)
        want = apriori_pair_rules(
            matrix, 0.5, minsup_count=2, require_pair_support=True
        ).rules.pairs()
        got = dhp_pair_rules(
            matrix, 0.5, minsup_count=2, n_buckets=2
        ).rules.pairs()
        assert got == want


class TestPruningEffect:
    def test_fewer_counters_than_touched_pairs(self):
        # One hot pair plus many once-off pairs that share no bucket
        # mass: DHP should count fewer pairs than a-priori touches.
        rows = [[0, 1]] * 20 + [[2 + i, 30 + i] for i in range(20)]
        matrix = BinaryMatrix(rows, n_columns=50)
        dhp = dhp_pair_rules(matrix, 0.5, minsup_count=5, n_buckets=997)
        assert dhp.counters_used <= 3
        assert (0, 1) in dhp.rules.pairs()

    def test_bucket_diagnostics(self):
        matrix = BinaryMatrix([[0, 1]] * 3, n_columns=2)
        result = dhp_pair_rules(matrix, 1, minsup_count=2, n_buckets=8)
        assert result.n_buckets == 8
        assert 1 <= result.buckets_passed <= 8

    def test_maxsup_filter(self):
        rows = [[0, 1]] * 10 + [[0]] * 20
        matrix = BinaryMatrix(rows, n_columns=2)
        result = dhp_pair_rules(
            matrix, 0.5, minsup_count=2, maxsup_count=15
        )
        assert result.rules.pairs() == set()  # column 0 too dense
