"""Interestingness measures (repro.mining.measures)."""

from fractions import Fraction

import pytest

from repro.baselines.bruteforce import implication_rules_bruteforce
from repro.core.rules import ImplicationRule, SimilarityRule
from repro.matrix.binary_matrix import BinaryMatrix
from repro.mining.measures import (
    conviction,
    dice,
    implication_measures,
    jaccard,
    lift,
    overlap,
    similarity_measures,
    support,
    top_rules,
)


class TestScalarMeasures:
    def test_support(self):
        assert support(3, 12) == Fraction(1, 4)

    def test_support_invalid_rows(self):
        with pytest.raises(ValueError):
            support(1, 0)

    def test_lift_independent_is_one(self):
        # P(i)=1/2, P(j)=1/2, P(ij)=1/4 over 4 rows.
        assert lift(1, 2, 2, 4) == 1

    def test_lift_positive_association(self):
        assert lift(2, 2, 2, 4) == 2

    def test_lift_empty_column(self):
        assert lift(0, 0, 3, 4) is None

    def test_conviction_exact_rule_is_none(self):
        assert conviction(5, 5, 7, 10) is None

    def test_conviction_value(self):
        # ones_i=4, hits=3, ones_j=5, n=10: (4*5)/(1*10) = 2.
        assert conviction(3, 4, 5, 10) == 2

    def test_jaccard(self):
        assert jaccard(2, 3, 4) == Fraction(2, 5)

    def test_jaccard_empty(self):
        assert jaccard(0, 0, 0) is None

    def test_dice(self):
        assert dice(2, 3, 4) == Fraction(4, 7)

    def test_dice_empty(self):
        assert dice(0, 0, 0) is None

    def test_overlap_equals_canonical_confidence(self):
        # For ones_i <= ones_j, overlap == hits/ones_i == confidence.
        assert overlap(3, 4, 9) == Fraction(3, 4)

    def test_overlap_empty(self):
        assert overlap(0, 0, 5) is None


class TestRuleMeasures:
    def test_implication_measures_consistent_with_matrix(self):
        matrix = BinaryMatrix(
            [[0, 1], [0, 1], [0], [1], [2]], n_columns=3
        )
        rules = implication_rules_bruteforce(matrix, 0.5)
        ones = matrix.column_ones()
        for rule in rules:
            measures = implication_measures(rule, ones, matrix.n_rows)
            assert measures["confidence"] == rule.confidence
            assert measures["support"] == Fraction(
                rule.hits, matrix.n_rows
            )
            inter = rule.hits
            expected_lift = Fraction(
                inter * matrix.n_rows,
                rule.ones * int(ones[rule.consequent]),
            )
            assert measures["lift"] == expected_lift

    def test_similarity_measures(self):
        rule = SimilarityRule(0, 1, intersection=3, union=5)
        measures = similarity_measures(rule, n_rows=10)
        assert measures["jaccard"] == Fraction(3, 5)
        assert measures["support"] == Fraction(3, 10)
        assert measures["dice"] == Fraction(6, 8)


class TestTopRules:
    def test_ranking_by_lift(self):
        rules = [
            ImplicationRule(0, 1, hits=2, ones=2),   # strong pair
            ImplicationRule(2, 3, hits=2, ones=4),   # weaker pair
        ]
        ones = [2, 2, 4, 10]
        ranked = top_rules(rules, ones, n_rows=20, by="lift", limit=2)
        assert ranked[0][0].pair == (0, 1)
        assert ranked[0][1] > ranked[1][1]

    def test_limit(self):
        rules = [
            ImplicationRule(i, i + 1, hits=1, ones=1) for i in range(5)
        ]
        ones = [1] * 6
        assert len(top_rules(rules, ones, 10, limit=3)) == 3

    def test_undefined_measures_dropped(self):
        rules = [ImplicationRule(0, 1, hits=3, ones=3)]
        ones = [3, 5]
        # conviction is undefined (no misses) -> dropped.
        assert top_rules(rules, ones, 10, by="conviction") == []

    def test_deterministic_tie_break(self):
        rules = [
            ImplicationRule(1, 2, hits=1, ones=1),
            ImplicationRule(0, 2, hits=1, ones=1),
        ]
        ones = [1, 1, 2]
        ranked = top_rules(rules, ones, 10, by="confidence")
        assert [r.pair for r, _ in ranked] == [(0, 2), (1, 2)]
