"""Two-pass streaming pipelines (repro.matrix.stream)."""

import os

import pytest

from repro.core.dmc_imp import find_implication_rules
from repro.core.dmc_sim import find_similarity_rules
from repro.core.miss_counting import BitmapConfig
from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.io import save_transactions
from repro.matrix.stream import (
    BucketSpill,
    FileSource,
    IterableSource,
    MatrixSource,
    TransactionSource,
    stream_implication_rules,
    stream_similarity_rules,
)
from tests.conftest import random_binary_matrix


class TestSources:
    def test_base_source_is_abstract(self):
        with pytest.raises(NotImplementedError):
            list(TransactionSource().iter_rows())

    def test_matrix_source_round_trip(self):
        matrix = BinaryMatrix([[0, 2], [1]], n_columns=3)
        source = MatrixSource(matrix)
        assert list(source.iter_rows()) == [(0, 2), (1,)]
        assert source.n_columns() == 3

    def test_iterable_source_normalizes_rows(self):
        source = IterableSource([[3, 1, 3], []], columns=5)
        assert list(source.iter_rows()) == [(1, 3), ()]
        assert source.n_columns() == 5

    def test_iterable_source_is_repeatable(self):
        source = IterableSource([[0], [1]])
        assert list(source.iter_rows()) == list(source.iter_rows())

    def test_file_source_reads_io_format(self, tmp_path):
        matrix = BinaryMatrix([[0, 3], [], [1]], n_columns=5)
        path = str(tmp_path / "data.txt")
        save_transactions(matrix, path)
        source = FileSource(path)
        rows = list(source.iter_rows())
        assert rows == [(0, 3), (), (1,)]
        assert source.n_columns() == 5  # from the #columns header


class TestBucketSpill:
    def test_rows_grouped_and_replayed_sparsest_first(self, tmp_path):
        with BucketSpill(directory=str(tmp_path)) as spill:
            spill.add((0, 1, 2, 3))
            spill.add((5,))
            spill.add((1, 2))
            assert spill.rows_spilled == 3
            replayed = list(spill.read_sparsest_first())
        assert replayed == [(5,), (1, 2), (0, 1, 2, 3)]

    def test_empty_rows_not_spilled(self, tmp_path):
        with BucketSpill(directory=str(tmp_path)) as spill:
            spill.add(())
            assert spill.rows_spilled == 0

    def test_bucket_count_is_logarithmic(self, tmp_path):
        with BucketSpill(directory=str(tmp_path)) as spill:
            spill.add(tuple(range(100)))
            spill.add((0,))
            assert spill.n_buckets == 7  # bucket_index(100) == 6

    def test_files_removed_on_close(self, tmp_path):
        spill = BucketSpill(directory=str(tmp_path))
        spill.add((1, 2))
        directory = spill._directory
        spill.close()
        assert not os.path.exists(directory)


class TestStreamingEquivalence:
    def test_implication_equals_in_memory(self):
        for seed in range(12):
            matrix = random_binary_matrix(seed)
            for threshold in (1.0, 0.8, 0.5):
                got = stream_implication_rules(
                    MatrixSource(matrix), threshold
                ).pairs()
                want = find_implication_rules(matrix, threshold).pairs()
                assert got == want, (seed, threshold)

    def test_similarity_equals_in_memory(self):
        for seed in range(12):
            matrix = random_binary_matrix(seed)
            for threshold in (1.0, 0.66):
                got = stream_similarity_rules(
                    MatrixSource(matrix), threshold
                ).pairs()
                want = find_similarity_rules(matrix, threshold).pairs()
                assert got == want, (seed, threshold)

    def test_from_file_source(self, tmp_path):
        matrix = random_binary_matrix(5)
        path = str(tmp_path / "data.txt")
        save_transactions(matrix, path)
        got = stream_implication_rules(FileSource(path), 0.75).pairs()
        want = find_implication_rules(matrix, 0.75).pairs()
        assert got == want

    def test_with_bitmap_switch(self):
        matrix = random_binary_matrix(9)
        config = BitmapConfig(switch_rows=5, memory_budget_bytes=0)
        got = stream_implication_rules(
            MatrixSource(matrix), 0.7, bitmap=config
        ).pairs()
        want = find_implication_rules(matrix, 0.7).pairs()
        assert got == want

    def test_spill_dir_honored_and_cleaned(self, tmp_path):
        matrix = random_binary_matrix(1)
        stream_implication_rules(
            MatrixSource(matrix), 0.9, spill_dir=str(tmp_path)
        )
        assert os.listdir(str(tmp_path)) == []

    def test_rules_carry_exact_statistics(self):
        matrix = random_binary_matrix(7)
        sets = matrix.column_sets()
        for rule in stream_implication_rules(MatrixSource(matrix), 0.6):
            assert rule.hits == len(
                sets[rule.antecedent] & sets[rule.consequent]
            )


class TestStreamEdgeCases:
    def test_zero_miss_scan_rows_direct(self):
        from repro.core.miss_counting import zero_miss_scan_rows
        from repro.core.policies import HundredPercentPolicy

        rows = [(0, (0, 1)), (1, (0, 1))]
        policy = HundredPercentPolicy([2, 2])
        rules = zero_miss_scan_rows(iter(rows), 2, policy)
        assert rules.pairs() == {(0, 1)}

    def test_file_source_rejects_labelled_files(self, tmp_path):
        from repro.matrix.binary_matrix import BinaryMatrix

        matrix = BinaryMatrix.from_transactions([["a", "b"]])
        path = str(tmp_path / "labelled.txt")
        save_transactions(matrix, path)
        with pytest.raises(ValueError):
            list(FileSource(path).iter_rows())

    def test_spill_close_is_idempotent(self, tmp_path):
        spill = BucketSpill(directory=str(tmp_path))
        spill.add((0, 1))
        spill.close()
        spill.close()  # second close must not raise

    def test_empty_source_mines_nothing(self):
        rules = stream_implication_rules(IterableSource([]), 0.9)
        assert len(rules) == 0

    def test_source_with_only_empty_rows(self):
        rules = stream_implication_rules(
            IterableSource([[], []], columns=3), 0.9
        )
        assert len(rules) == 0

    def test_first_scan_grows_column_space(self):
        # Column ids beyond the declared universe extend the counts.
        source = IterableSource([[0], [7]], columns=2)
        rules = stream_implication_rules(source, 1)
        assert len(rules) == 0  # no co-occurrence, but no crash either
