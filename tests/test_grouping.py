"""Rule graphs and keyword expansion (repro.mining.grouping)."""

import pytest

from repro.core.rules import ImplicationRule, RuleSet, SimilarityRule
from repro.matrix.binary_matrix import Vocabulary
from repro.mining.grouping import (
    expand_keyword,
    format_rules,
    implication_rule_graph,
    similarity_components,
    similarity_rule_graph,
)


@pytest.fixture
def chess_rules():
    """A miniature Figure 7 rule graph: 0=polgar, 1=judit, 2=chess,
    3=kasparov, 4=unrelated."""
    return RuleSet(
        [
            ImplicationRule(0, 1, 9, 10),
            ImplicationRule(0, 2, 10, 10),
            ImplicationRule(1, 3, 9, 10),
            ImplicationRule(3, 2, 19, 20),
            ImplicationRule(4, 2, 5, 5),
        ]
    )


@pytest.fixture
def chess_vocabulary():
    return Vocabulary(["polgar", "judit", "chess", "kasparov", "other"])


class TestGraphs:
    def test_implication_graph_edges(self, chess_rules):
        graph = implication_rule_graph(chess_rules)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert graph[0][1]["confidence"] == chess_rules[(0, 1)].confidence

    def test_similarity_graph_is_undirected(self):
        rules = [SimilarityRule(0, 1, 3, 4)]
        graph = similarity_rule_graph(rules)
        assert graph.has_edge(1, 0)


class TestExpandKeyword:
    def test_expansion_reaches_successors(self, chess_rules):
        expanded = expand_keyword(chess_rules, 0)
        pairs = {rule.pair for rule in expanded}
        # polgar -> {judit, chess}; judit -> kasparov; kasparov -> chess.
        assert pairs == {(0, 1), (0, 2), (1, 3), (3, 2)}

    def test_unrelated_rules_excluded(self, chess_rules):
        expanded = expand_keyword(chess_rules, 0)
        assert all(rule.antecedent != 4 for rule in expanded)

    def test_depth_limit(self, chess_rules):
        expanded = expand_keyword(chess_rules, 0, max_depth=1)
        assert {rule.pair for rule in expanded} == {(0, 1), (0, 2)}

    def test_label_seed(self, chess_rules, chess_vocabulary):
        expanded = expand_keyword(
            chess_rules, "polgar", vocabulary=chess_vocabulary
        )
        assert expanded[0].antecedent == 0

    def test_label_without_vocabulary_rejected(self, chess_rules):
        with pytest.raises(ValueError):
            expand_keyword(chess_rules, "polgar")

    def test_unknown_seed_returns_empty(self, chess_rules):
        assert expand_keyword(chess_rules, 99) == []

    def test_breadth_first_order(self, chess_rules):
        expanded = expand_keyword(chess_rules, 0)
        # Depth-1 rules (antecedent 0) come before depth-2 rules.
        antecedents = [rule.antecedent for rule in expanded]
        assert antecedents[:2] == [0, 0]

    def test_cycles_terminate(self):
        rules = RuleSet(
            [ImplicationRule(0, 1, 5, 5), ImplicationRule(1, 0, 5, 6)]
        )
        expanded = expand_keyword(rules, 0)
        assert {rule.pair for rule in expanded} == {(0, 1), (1, 0)}


class TestSimilarityComponents:
    def test_components_found(self):
        rules = [
            SimilarityRule(0, 1, 3, 4),
            SimilarityRule(1, 2, 3, 4),
            SimilarityRule(5, 6, 2, 2),
        ]
        components = similarity_components(rules)
        assert components == [{0, 1, 2}, {5, 6}]

    def test_largest_component_first(self):
        rules = [
            SimilarityRule(7, 8, 1, 1),
            SimilarityRule(0, 1, 1, 1),
            SimilarityRule(1, 2, 1, 1),
        ]
        assert len(similarity_components(rules)[0]) == 3

    def test_empty_rules(self):
        assert similarity_components([]) == []


class TestFormatRules:
    def test_layout_columns(self, chess_rules, chess_vocabulary):
        text = format_rules(
            expand_keyword(chess_rules, 0), chess_vocabulary, columns=2
        )
        lines = text.splitlines()
        assert "polgar -> judit" in lines[0]
        assert "polgar -> chess" in lines[0]

    def test_empty(self):
        assert format_rules([]) == "(no rules)"


class TestEquivalenceGroups:
    def test_mutual_implications_form_a_group(self):
        from repro.mining.grouping import implication_equivalence_groups

        rules = RuleSet(
            [
                ImplicationRule(0, 1, 9, 10),
                ImplicationRule(1, 0, 9, 10),
                ImplicationRule(2, 0, 5, 5),  # one-way only
            ]
        )
        groups = implication_equivalence_groups(rules)
        assert groups == [{0, 1}]

    def test_cycle_of_three(self):
        from repro.mining.grouping import implication_equivalence_groups

        rules = RuleSet(
            [
                ImplicationRule(0, 1, 1, 1),
                ImplicationRule(1, 2, 1, 1),
                ImplicationRule(2, 0, 1, 1),
            ]
        )
        assert implication_equivalence_groups(rules) == [{0, 1, 2}]

    def test_largest_group_first(self):
        from repro.mining.grouping import implication_equivalence_groups

        rules = RuleSet(
            [
                ImplicationRule(0, 1, 1, 1),
                ImplicationRule(1, 0, 1, 1),
                ImplicationRule(2, 3, 1, 1),
                ImplicationRule(3, 4, 1, 1),
                ImplicationRule(4, 2, 1, 1),
            ]
        )
        groups = implication_equivalence_groups(rules)
        assert [len(g) for g in groups] == [3, 2]

    def test_no_groups_in_a_dag(self):
        from repro.mining.grouping import implication_equivalence_groups

        rules = RuleSet(
            [ImplicationRule(0, 1, 1, 1), ImplicationRule(1, 2, 1, 1)]
        )
        assert implication_equivalence_groups(rules) == []

    def test_identical_columns_group_on_real_data(self):
        from repro.core.dmc_imp import find_implication_rules
        from repro.matrix.binary_matrix import BinaryMatrix
        from repro.mining.grouping import implication_equivalence_groups

        # Columns 0 and 1 identical => mutual 100% implication.
        matrix = BinaryMatrix(
            [[0, 1], [0, 1], [2], [0, 1, 2]], n_columns=3
        )
        rules = find_implication_rules(matrix, 1)
        # Canonical mining emits only 0 => 1; the reverse edge is
        # derivable from the pre-scan counts.
        groups = implication_equivalence_groups(
            rules, ones=matrix.column_ones(), threshold=1
        )
        assert groups == [{0, 1}]
        # Without the counts, no reverse edges => no groups.
        assert implication_equivalence_groups(rules) == []


class TestGroupDag:
    def test_condensation_is_acyclic(self):
        import networkx as nx

        from repro.mining.grouping import group_implication_dag

        rules = RuleSet(
            [
                ImplicationRule(0, 1, 1, 1),
                ImplicationRule(1, 0, 1, 1),
                ImplicationRule(1, 2, 1, 1),
            ]
        )
        dag = group_implication_dag(rules)
        assert nx.is_directed_acyclic_graph(dag)
        assert frozenset({0, 1}) in dag.nodes
        assert dag.has_edge(frozenset({0, 1}), frozenset({2}))

    def test_singletons_kept_as_nodes(self):
        from repro.mining.grouping import group_implication_dag

        rules = RuleSet([ImplicationRule(0, 1, 1, 1)])
        dag = group_implication_dag(rules)
        assert set(dag.nodes) == {frozenset({0}), frozenset({1})}
