"""The run journal (repro.observe.journal) and its CLI.

Pins the durability contract (torn-tail tolerance, disable-on-dead-
disk, fsync discipline through the storage layer) and the acceptance
claim that ``summarize`` reconstructs the engine's pruning curve
point-for-point from ``curve-sample`` events.
"""

import errno
import json
import threading

import pytest

from repro.api import mine
from repro.cli import main
from repro.core.stats import PipelineStats
from repro.matrix.binary_matrix import BinaryMatrix
from repro.observe import (
    RunJournal,
    RunObserver,
    read_journal,
    summarize_journal,
    tail_journal,
)
from repro.runtime.storage import FaultyStorage, StorageFault
from tests.conftest import random_binary_matrix


def _journal_path(tmp_path) -> str:
    return str(tmp_path / "telemetry" / "run.jsonl")


class TestRunJournal:
    def test_events_round_trip_with_identity_and_sequence(self, tmp_path):
        path = _journal_path(tmp_path)
        with RunJournal(path, "run-1") as journal:
            journal.emit("run-start", task="implication")
            journal.emit("phase-start", name="pre-scan")
            journal.emit("run-end", rules=3)
        records = list(read_journal(path))
        assert [r["event"] for r in records] == [
            "run-start", "phase-start", "run-end",
        ]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert all(r["run_id"] == "run-1" for r in records)
        assert all("ts" in r for r in records)
        assert records[2]["rules"] == 3

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = _journal_path(tmp_path)
        with RunJournal(path, "run-1") as journal:
            journal.emit("run-start")
            journal.emit("phase-start", name="scan")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "run-1", "seq": 2, "eve')  # torn
        records = list(read_journal(path))
        assert [r["seq"] for r in records] == [0, 1]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = _journal_path(tmp_path)
        with RunJournal(path, "run-1") as journal:
            journal.emit("run-start")
        with open(path, "r+", encoding="utf-8") as handle:
            handle.seek(0)
            handle.write("garbage")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "run-1", "seq": 1, "event": "x"}\n')
        with pytest.raises(ValueError, match="corrupt journal line 1"):
            list(read_journal(path))

    def test_tail_returns_the_last_records(self, tmp_path):
        path = _journal_path(tmp_path)
        with RunJournal(path, "run-1") as journal:
            for index in range(10):
                journal.emit("curve-sample", rows_scanned=index)
        tail = tail_journal(path, count=3)
        assert [r["rows_scanned"] for r in tail] == [7, 8, 9]
        assert len(tail_journal(path, count=0)) == 10

    def test_dead_disk_disables_instead_of_raising(self, tmp_path):
        path = _journal_path(tmp_path)
        storage = FaultyStorage(faults=(
            StorageFault(op="fsync", code=errno.ENOSPC),
        ))
        journal = RunJournal(path, "run-1", storage=storage, fsync_every=1)
        journal.emit("run-start")  # first fsync trips ENOSPC
        journal.emit("phase-start", name="scan")  # silently dropped
        assert journal.disabled
        assert journal.error == "ENOSPC"
        journal.close()  # still idempotent and quiet

    def test_writes_go_through_the_storage_layer(self, tmp_path):
        path = _journal_path(tmp_path)
        storage = FaultyStorage()
        with RunJournal(path, "run-1", storage=storage) as journal:
            journal.emit("run-start")
        ops = [op for op, _ in storage.op_log]
        assert "open-write" in ops
        assert "fsync" in ops  # close() always syncs the tail

    def test_concurrent_emitters_interleave_without_tearing(self, tmp_path):
        path = _journal_path(tmp_path)
        journal = RunJournal(path, "run-1")

        def emitter(worker: int):
            for index in range(200):
                journal.emit("curve-sample", worker=worker, index=index)

        threads = [
            threading.Thread(target=emitter, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        records = list(read_journal(path))
        assert len(records) == 800
        assert sorted(r["seq"] for r in records) == list(range(800))


class TestJournalFromRuns:
    def _curve_from_stats(self, stats: PipelineStats):
        return [list(point) for point in stats.pruning_curve]

    @pytest.mark.parametrize("kwargs", [
        {"minconf": 0.7}, {"minsim": 0.4},
    ])
    def test_summarize_reconstructs_the_engine_curve(self, tmp_path, kwargs):
        matrix = random_binary_matrix(11, max_rows=200, max_columns=12)
        path = _journal_path(tmp_path)
        result = mine(matrix, journal_path=path, **kwargs)
        summary = summarize_journal(path)
        assert summary["run_id"] == result.run_id
        assert summary["rules"] == len(result.rules)
        curves = summary["pruning_curves"]
        scan = "<100%-rules"  # the partial pass of both rule kinds
        assert scan in curves
        assert curves[scan]  # non-empty for both rule kinds
        # The journal carries the engine's curve point-for-point.
        engine_curve = self._curve_from_stats(result.stats)
        assert curves[scan] == engine_curve
        live = [point[1] for point in engine_curve]
        # Non-increasing once seeding ends: pruning only shrinks.
        peak = live.index(max(live))
        assert live[peak:] == sorted(live[peak:], reverse=True)

    def test_phases_and_lifecycle_events_are_recorded(self, tmp_path):
        matrix = random_binary_matrix(5, max_rows=120, max_columns=10)
        path = _journal_path(tmp_path)
        mine(matrix, minconf=0.8, journal_path=path)
        summary = summarize_journal(path)
        assert summary["events"]["run-start"] == 1
        assert summary["events"]["run-end"] == 1
        names = [phase["name"] for phase in summary["phases"]]
        assert "100%-rules" in names
        assert all(
            phase["seconds"] is not None for phase in summary["phases"]
        )
        assert summary["wall_seconds"] >= 0

    def test_unwritable_journal_degrades_not_aborts(self, tmp_path):
        matrix = random_binary_matrix(5, max_rows=60, max_columns=8)
        storage = FaultyStorage(faults=(
            StorageFault(
                op="open-write", path_contains="run.jsonl",
                code=errno.EROFS,
            ),
        ))
        with pytest.warns(RuntimeWarning, match="run journal disabled"):
            result = mine(
                matrix, minconf=0.8,
                journal_path=_journal_path(tmp_path), storage=storage,
            )
        assert len(result.rules) == len(mine(matrix, minconf=0.8).rules)
        assert "journal-off" in result.stats.degradations

    def test_run_id_is_stamped_through(self, tmp_path):
        matrix = random_binary_matrix(5, max_rows=60, max_columns=8)
        path = _journal_path(tmp_path)
        result = mine(
            matrix, minconf=0.8, journal_path=path, run_id="my-run-42",
        )
        assert result.run_id == "my-run-42"
        assert all(r["run_id"] == "my-run-42" for r in read_journal(path))

    def test_caller_attached_journal_is_not_closed_by_mine(self, tmp_path):
        matrix = random_binary_matrix(5, max_rows=60, max_columns=8)
        path = _journal_path(tmp_path)
        journal = RunJournal(path, "caller-owned")
        observer = RunObserver(journal=journal)
        mine(matrix, minconf=0.8, observer=observer, journal_path=path)
        journal.emit("run-start", note="still-open")  # caller still owns it
        assert not journal.disabled
        journal.close()
        assert any(
            r.get("note") == "still-open" for r in read_journal(path)
        )


class TestJournalCli:
    def _write_run(self, tmp_path) -> str:
        matrix = random_binary_matrix(9, max_rows=120, max_columns=10)
        path = _journal_path(tmp_path)
        mine(matrix, minconf=0.8, journal_path=path)
        return path

    def test_tail_prints_json_records(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["journal", "tail", path, "--count", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["event"] == "run-end"

    def test_summarize_renders_the_run_story(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["journal", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "run " in out
        assert "phases:" in out
        assert "pruning curve [" in out
        assert "events:" in out

    def test_missing_journal_is_a_clean_error(self, tmp_path, capsys):
        assert main(
            ["journal", "tail", str(tmp_path / "absent.jsonl")]
        ) == 1
        assert "cannot read journal" in capsys.readouterr().err
