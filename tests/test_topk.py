"""Top-k mining (repro.core.topk)."""

from fractions import Fraction

import pytest

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.topk import (
    top_k_implication_rules,
    top_k_similarity_rules,
)
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


class TestTopKImplication:
    def test_returns_k_strongest(self):
        matrix = random_binary_matrix(10)
        rules, cut = top_k_implication_rules(matrix, k=5)
        truth = implication_rules_bruteforce(matrix, Fraction(1, 100))
        strongest = sorted(
            (rule.confidence for rule in truth), reverse=True
        )
        assert cut == strongest[min(5, len(strongest)) - 1]
        assert all(rule.confidence >= cut for rule in rules)
        assert len(rules) >= min(5, len(strongest))

    def test_ties_at_cut_included(self):
        # Two identical-strength rules; k=1 keeps both.
        matrix = BinaryMatrix(
            [[0, 1], [0, 1], [2, 3], [2, 3], [4]], n_columns=5
        )
        rules, cut = top_k_implication_rules(matrix, k=1)
        assert cut == 1
        assert {(0, 1), (2, 3)} <= rules.pairs()

    def test_floor_lowered_when_needed(self):
        # Rules exist only below the default floor 1/2.
        rows = [[0, 1]] + [[0]] * 2 + [[1]] * 5
        matrix = BinaryMatrix(rows, n_columns=2)
        rules, cut = top_k_implication_rules(
            matrix, k=1, floor_threshold=Fraction(9, 10)
        )
        assert cut == Fraction(1, 3)
        assert rules.pairs() == {(0, 1)}

    def test_empty_matrix(self):
        matrix = BinaryMatrix([[0], [1]], n_columns=2)
        rules, cut = top_k_implication_rules(matrix, k=3)
        assert len(rules) == 0
        assert cut is None

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_implication_rules(random_binary_matrix(0), k=0)


class TestTopKSimilarity:
    def test_returns_k_most_similar(self):
        matrix = random_binary_matrix(11)
        rules, cut = top_k_similarity_rules(
            matrix, k=3, floor_threshold=Fraction(1, 10)
        )
        truth = similarity_rules_bruteforce(matrix, Fraction(1, 10))
        strongest = sorted(
            (rule.similarity for rule in truth), reverse=True
        )
        if strongest:
            assert cut == strongest[min(3, len(strongest)) - 1]
            assert all(rule.similarity >= cut for rule in rules)

    def test_identical_pair_ranks_first(self):
        matrix = BinaryMatrix(
            [[0, 1], [0, 1], [2], [2]], n_columns=3
        )
        rules, cut = top_k_similarity_rules(matrix, k=1)
        assert cut == 1
        assert rules.pairs() == {(0, 1)}

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_similarity_rules(random_binary_matrix(0), k=-1)
