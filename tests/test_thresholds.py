"""Exact threshold arithmetic (repro.core.thresholds)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.thresholds import (
    as_fraction,
    confidence_holds,
    confidence_removal_cutoff,
    density_prunable,
    max_hits_prunable,
    max_misses,
    max_possible_hits,
    min_hits,
    pair_max_misses,
    similarity_holds,
    similarity_removal_cutoff,
)


class TestAsFraction:
    def test_decimal_float_is_exact(self):
        assert as_fraction(0.85) == Fraction(17, 20)

    def test_point_one_is_one_tenth(self):
        # float 0.1 is not 1/10 in binary, but the decimal repr is used.
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_fraction_passes_through(self):
        assert as_fraction(Fraction(2, 3)) == Fraction(2, 3)

    def test_int_one(self):
        assert as_fraction(1) == Fraction(1)

    def test_string(self):
        assert as_fraction("3/4") == Fraction(3, 4)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(0)

    def test_above_one_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(1.2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(-0.5)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            as_fraction([0.5])


class TestMaxMisses:
    def test_paper_example_1_3(self):
        # 100 ones at 85% confidence allows 15 misses.
        assert max_misses(100, Fraction(17, 20)) == 15

    def test_exact_boundary(self):
        # minconf=0.9, ones=10: one miss leaves conf exactly 0.9.
        assert max_misses(10, Fraction(9, 10)) == 1

    def test_full_confidence_allows_no_misses(self):
        assert max_misses(100, Fraction(1)) == 0

    def test_zero_ones(self):
        assert max_misses(0, Fraction(1, 2)) == 0

    def test_negative_ones_rejected(self):
        with pytest.raises(ValueError):
            max_misses(-1, Fraction(1, 2))

    @given(
        ones=st.integers(min_value=0, max_value=10_000),
        p=st.integers(min_value=1, max_value=100),
        q=st.integers(min_value=1, max_value=100),
    )
    def test_budget_is_tight(self, ones, p, q):
        """maxmiss is the largest miss count that keeps conf >= minconf."""
        if p > q:
            p, q = q, p
        minconf = Fraction(p, q)
        budget = max_misses(ones, minconf)
        assert 0 <= budget <= ones
        if ones > 0:
            assert confidence_holds(ones - budget, ones, minconf)
            if budget < ones:
                assert not confidence_holds(
                    ones - budget - 1, ones, minconf
                )

    @given(
        ones=st.integers(min_value=0, max_value=10_000),
        p=st.integers(min_value=1, max_value=100),
        q=st.integers(min_value=1, max_value=100),
    )
    def test_min_hits_complements_max_misses(self, ones, p, q):
        if p > q:
            p, q = q, p
        minconf = Fraction(p, q)
        assert min_hits(ones, minconf) + max_misses(ones, minconf) == ones


class TestConfidenceHolds:
    def test_exact_equality_counts(self):
        assert confidence_holds(17, 20, Fraction(17, 20))

    def test_just_below_fails(self):
        assert not confidence_holds(16, 20, Fraction(17, 20))

    def test_zero_ones_is_invalid(self):
        assert not confidence_holds(0, 0, Fraction(1, 2))

    def test_no_float_rounding(self):
        # 3/10 >= 0.3 must hold exactly despite float 0.3 != 3/10.
        assert confidence_holds(3, 10, as_fraction(0.3))


class TestRemovalCutoffs:
    def test_confidence_cutoff_90(self):
        # ones <= 9 have zero budget at 90%; ones=10 allows one miss.
        cutoff = confidence_removal_cutoff(Fraction(9, 10))
        assert cutoff == 9
        assert max_misses(cutoff, Fraction(9, 10)) == 0
        assert max_misses(cutoff + 1, Fraction(9, 10)) == 1

    def test_confidence_cutoff_at_one_rejected(self):
        with pytest.raises(ValueError):
            confidence_removal_cutoff(Fraction(1))

    @given(
        p=st.integers(min_value=1, max_value=60),
        q=st.integers(min_value=2, max_value=60),
    )
    def test_confidence_cutoff_is_exact(self, p, q):
        if p >= q:
            return
        minconf = Fraction(p, q)
        cutoff = confidence_removal_cutoff(minconf)
        assert max_misses(cutoff, minconf) == 0
        assert max_misses(cutoff + 1, minconf) >= 1

    def test_similarity_cutoff_75(self):
        # best non-identical sim for ones=o is o/(o+1); at 75% the
        # cutoff is o=2 (2/3 < 3/4) while o=3 reaches 3/4 exactly.
        cutoff = similarity_removal_cutoff(Fraction(3, 4))
        assert cutoff == 2
        assert similarity_holds(3, 4, Fraction(3, 4))

    def test_similarity_cutoff_at_one_rejected(self):
        with pytest.raises(ValueError):
            similarity_removal_cutoff(Fraction(1))

    @given(
        p=st.integers(min_value=1, max_value=60),
        q=st.integers(min_value=2, max_value=60),
    )
    def test_similarity_cutoff_is_exact(self, p, q):
        if p >= q:
            return
        minsim = Fraction(p, q)
        cutoff = similarity_removal_cutoff(minsim)
        # At the cutoff, the best non-identical pair fails...
        assert not similarity_holds(cutoff, cutoff + 1, minsim)
        # ...and one past the cutoff, it can succeed.
        assert similarity_holds(cutoff + 1, cutoff + 2, minsim)


class TestPairMaxMisses:
    def test_paper_example_5_1(self):
        # ones 4 and 5 at 75%: no sparse-side miss allowed (the paper's
        # "one miss" counts both sides; the dense side's slack is
        # already in ones_j).
        assert pair_max_misses(4, 5, Fraction(3, 4)) == 0

    def test_negative_budget_is_density_pruning(self):
        assert pair_max_misses(2, 10, Fraction(3, 4)) < 0
        assert density_prunable(2, 10, Fraction(3, 4))

    def test_requires_sorted_cardinalities(self):
        with pytest.raises(ValueError):
            pair_max_misses(10, 2, Fraction(3, 4))

    @given(
        ones_i=st.integers(min_value=0, max_value=300),
        extra=st.integers(min_value=0, max_value=300),
        p=st.integers(min_value=1, max_value=40),
        q=st.integers(min_value=1, max_value=40),
    )
    def test_budget_matches_exact_similarity(self, ones_i, extra, p, q):
        """miss_i <= budget  <=>  Sim >= minsim (union = ones_j + miss_i)."""
        if p > q:
            p, q = q, p
        minsim = Fraction(p, q)
        ones_j = ones_i + extra
        budget = pair_max_misses(ones_i, ones_j, minsim)
        for misses in range(0, ones_i + 1):
            inter = ones_i - misses
            union = ones_j + misses
            if union == 0:
                continue
            assert (misses <= budget) == similarity_holds(
                inter, union, minsim
            )

    @given(
        ones_i=st.integers(min_value=1, max_value=300),
        extra=st.integers(min_value=0, max_value=300),
        p=st.integers(min_value=1, max_value=40),
        q=st.integers(min_value=2, max_value=40),
    )
    def test_density_pruning_equals_negative_budget(
        self, ones_i, extra, p, q
    ):
        if p >= q:
            return
        minsim = Fraction(p, q)
        ones_j = ones_i + extra
        assert density_prunable(ones_i, ones_j, minsim) == (
            pair_max_misses(ones_i, ones_j, minsim) < 0
        )


class TestMaxHitsPruning:
    def test_paper_example_5_1_trace(self):
        # Before reading r4: cnt(c1)=1, cnt(c2)=3, miss=0, ones 4/5 at
        # 75%.  Consuming r4 as a hit: counts become 2 and 4; the best
        # final miss count is 0 + max(0, 2-1) = 1 > budget 0 => prune.
        assert max_hits_prunable(
            4, 5, count_i=2, misses_i=0, count_j=4, minsim=Fraction(3, 4)
        )

    def test_max_possible_hits(self):
        assert max_possible_hits(3, 5, 2) == 5
        assert max_possible_hits(0, 0, 10) == 0

    def test_no_prune_when_future_can_recover(self):
        assert not max_hits_prunable(
            10, 10, count_i=2, misses_i=0, count_j=2, minsim=Fraction(1, 2)
        )

    @given(
        ones_i=st.integers(min_value=1, max_value=60),
        extra=st.integers(min_value=0, max_value=60),
        count_i=st.integers(min_value=0, max_value=60),
        count_j=st.integers(min_value=0, max_value=120),
        misses=st.integers(min_value=0, max_value=60),
        p=st.integers(min_value=1, max_value=20),
        q=st.integers(min_value=2, max_value=20),
    )
    def test_prune_is_sound(
        self, ones_i, extra, count_i, count_j, misses, p, q
    ):
        """If the prune fires, no achievable future reaches minsim."""
        if p >= q:
            return
        minsim = Fraction(p, q)
        ones_j = ones_i + extra
        count_i = min(count_i, ones_i)
        count_j = min(count_j, ones_j)
        misses = min(misses, count_i)
        if not max_hits_prunable(
            ones_i, ones_j, count_i, misses, count_j, minsim
        ):
            return
        # Best achievable: every remaining 1 of c_i that can pair with a
        # remaining 1 of c_j does.
        remaining_i = ones_i - count_i
        remaining_j = ones_j - count_j
        best_final_misses = misses + max(0, remaining_i - remaining_j)
        inter = ones_i - best_final_misses
        union = ones_j + best_final_misses
        assert not similarity_holds(inter, union, minsim)
