"""The DMC-bitmap tail (repro.core.bitmap, Algorithm 4.1)."""

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.bitmap import bitmap_tail
from repro.core.candidates import CandidateArray
from repro.core.miss_counting import BitmapConfig, miss_counting_scan
from repro.core.policies import (
    HundredPercentPolicy,
    IdentityPolicy,
    ImplicationPolicy,
    SimilarityPolicy,
)
from repro.core.rules import RuleSet
from repro.core.stats import ScanStats
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


def _run_tail_only(matrix, policy):
    """Run the tail over the whole matrix (switch at row zero)."""
    rules = RuleSet()
    stats = ScanStats()
    remaining = [(r, row) for r, row in matrix.iter_rows() if row]
    bitmap_tail(
        remaining,
        policy,
        [0] * matrix.n_columns,
        CandidateArray(),
        rules,
        stats,
    )
    return rules, stats


class TestTailAlone:
    """With cnt == 0 everywhere, Phase 2 must mine the whole matrix."""

    def test_implication_from_scratch(self):
        for seed in range(10):
            matrix = random_binary_matrix(seed)
            policy = ImplicationPolicy(matrix.column_ones(), 0.7)
            rules, _ = _run_tail_only(matrix, policy)
            want = implication_rules_bruteforce(matrix, 0.7).pairs()
            assert rules.pairs() == want, seed

    def test_similarity_from_scratch(self):
        for seed in range(10):
            matrix = random_binary_matrix(seed)
            policy = SimilarityPolicy(matrix.column_ones(), 0.6)
            rules, _ = _run_tail_only(matrix, policy)
            want = similarity_rules_bruteforce(matrix, 0.6).pairs()
            assert rules.pairs() == want, seed

    def test_identity_from_scratch(self):
        matrix = BinaryMatrix(
            [[0, 1, 3], [0, 1], [0, 1, 2, 3]], n_columns=4
        )
        policy = IdentityPolicy(matrix.column_ones())
        rules, _ = _run_tail_only(matrix, policy)
        assert rules.pairs() == {(0, 1)}

    def test_stats_record_bitmap_bytes_and_columns(self):
        matrix = random_binary_matrix(4)
        policy = ImplicationPolicy(matrix.column_ones(), 0.7)
        _, stats = _run_tail_only(matrix, policy)
        assert stats.bitmap_bytes > 0
        assert stats.bitmap_phase2_columns > 0
        assert stats.bitmap_seconds > 0


class TestSwitchAtEveryPoint:
    """Forcing the switch at any remaining-row count must not change
    the mined rules — the strongest equivalence check for the tail."""

    def test_implication_all_switch_points(self):
        matrix = random_binary_matrix(8)
        policy = ImplicationPolicy(matrix.column_ones(), 0.6)
        baseline = miss_counting_scan(matrix, policy).pairs()
        n_rows = sum(1 for _, row in matrix.iter_rows() if row)
        for remaining in range(1, n_rows + 1):
            config = BitmapConfig(
                switch_rows=remaining, memory_budget_bytes=0
            )
            got = miss_counting_scan(
                matrix, policy, bitmap=config
            ).pairs()
            assert got == baseline, remaining

    def test_similarity_all_switch_points(self):
        matrix = random_binary_matrix(9)
        policy = SimilarityPolicy(matrix.column_ones(), 0.5)
        baseline = miss_counting_scan(matrix, policy).pairs()
        n_rows = sum(1 for _, row in matrix.iter_rows() if row)
        for remaining in range(1, n_rows + 1):
            config = BitmapConfig(
                switch_rows=remaining, memory_budget_bytes=0
            )
            got = miss_counting_scan(
                matrix, policy, bitmap=config
            ).pairs()
            assert got == baseline, remaining

    def test_hundred_percent_all_switch_points(self):
        matrix = random_binary_matrix(10)
        policy = HundredPercentPolicy(matrix.column_ones())
        baseline = miss_counting_scan(matrix, policy).pairs()
        n_rows = sum(1 for _, row in matrix.iter_rows() if row)
        for remaining in range(1, n_rows + 1):
            config = BitmapConfig(
                switch_rows=remaining, memory_budget_bytes=0
            )
            got = miss_counting_scan(
                matrix, policy, bitmap=config
            ).pairs()
            assert got == baseline, remaining


class TestPhaseSplit:
    def test_closed_columns_go_through_phase1(self):
        # Column 0 has low budget: after two misses it is closed, so at
        # switch time it must be finished by Phase 1.
        matrix = BinaryMatrix(
            [[0, 1], [0], [0], [0, 1], [1], [0, 1]], n_columns=2
        )
        policy = ImplicationPolicy(matrix.column_ones(), 0.75)
        stats = ScanStats()
        config = BitmapConfig(switch_rows=2, memory_budget_bytes=0)
        miss_counting_scan(matrix, policy, bitmap=config, stats=stats)
        assert stats.bitmap_phase1_columns >= 1
