"""The exact oracle itself (repro.baselines.bruteforce)."""

from fractions import Fraction

from repro.baselines.bruteforce import (
    confidence_of,
    cooccurrence_counts,
    implication_rules_bruteforce,
    similarity_of,
    similarity_rules_bruteforce,
)
from repro.matrix.binary_matrix import BinaryMatrix


class TestCooccurrence:
    def test_counts_by_hand(self):
        matrix = BinaryMatrix(
            [[0, 1], [0, 1, 2], [1, 2]], n_columns=3
        )
        counts = {
            (i, j): inter for i, j, inter in cooccurrence_counts(matrix)
        }
        assert counts == {(0, 1): 2, (0, 2): 1, (1, 2): 2}

    def test_non_cooccurring_pairs_absent(self):
        matrix = BinaryMatrix([[0], [1]], n_columns=2)
        assert list(cooccurrence_counts(matrix)) == []


class TestImplicationOracle:
    def test_hand_computed(self):
        # S0 = {0,1}, S1 = {0,1,2}: conf(0=>1) = 1, canonical 0=>1.
        matrix = BinaryMatrix([[0, 1], [0, 1], [1]], n_columns=2)
        rules = implication_rules_bruteforce(matrix, 1)
        assert rules.pairs() == {(0, 1)}
        assert rules[(0, 1)].confidence == 1

    def test_canonical_direction_only(self):
        # conf(1=>0) = 2/3 but 1 is denser: only 0=>1 is considered.
        matrix = BinaryMatrix([[0, 1], [0, 1], [1]], n_columns=2)
        rules = implication_rules_bruteforce(matrix, 0.5)
        assert rules.pairs() == {(0, 1)}

    def test_threshold_exactness(self):
        # Canonical rule 0 => 1 (ones 3 < 4) with conf = 2/3; mining at
        # exactly 2/3 keeps it, just above drops it.
        matrix = BinaryMatrix(
            [[0, 1], [0, 1], [0], [1], [1]], n_columns=2
        )
        assert implication_rules_bruteforce(
            matrix, Fraction(2, 3)
        ).pairs() == {(0, 1)}
        assert (
            implication_rules_bruteforce(matrix, Fraction(67, 100)).pairs()
            == set()
        )

    def test_confidence_of(self):
        matrix = BinaryMatrix([[0, 1], [0]], n_columns=2)
        assert confidence_of(matrix, 0, 1) == Fraction(1, 2)
        assert confidence_of(matrix, 1, 0) == 1

    def test_confidence_of_empty_column(self):
        matrix = BinaryMatrix([[0]], n_columns=2)
        assert confidence_of(matrix, 1, 0) is None


class TestSimilarityOracle:
    def test_hand_computed(self):
        matrix = BinaryMatrix(
            [[0, 1], [0, 1], [0], [1]], n_columns=2
        )
        rules = similarity_rules_bruteforce(matrix, 0.5)
        assert rules.pairs() == {(0, 1)}
        assert rules[(0, 1)].similarity == Fraction(2, 4)

    def test_symmetric_canonical_pair(self):
        matrix = BinaryMatrix([[0, 1], [1]], n_columns=2)
        rules = similarity_rules_bruteforce(matrix, 0.5)
        # ones(0)=1 < ones(1)=2 -> first must be column 0.
        rule = rules[(0, 1)]
        assert rule.first == 0 and rule.second == 1

    def test_similarity_of(self):
        matrix = BinaryMatrix([[0, 1], [1]], n_columns=2)
        assert similarity_of(matrix, 0, 1) == Fraction(1, 2)

    def test_similarity_of_empty_columns(self):
        matrix = BinaryMatrix([[]], n_columns=2)
        assert similarity_of(matrix, 0, 1) is None

    def test_identical_columns(self):
        matrix = BinaryMatrix([[0, 1], [0, 1]], n_columns=2)
        rules = similarity_rules_bruteforce(matrix, 1)
        assert rules[(0, 1)].similarity == 1


class TestPairwiseIntersections:
    def test_matches_set_intersections(self):
        from repro.baselines.bruteforce import pairwise_intersections
        from tests.conftest import random_binary_matrix

        matrix = random_binary_matrix(17)
        sets = matrix.column_sets()
        pairs = [
            (i, j)
            for i in range(matrix.n_columns)
            for j in range(matrix.n_columns)
            if i != j
        ]
        bulk = pairwise_intersections(matrix, pairs)
        for i, j in pairs:
            assert bulk[(i, j)] == len(sets[i] & sets[j])

    def test_empty_batch(self):
        from repro.baselines.bruteforce import pairwise_intersections

        matrix = BinaryMatrix([[0]], n_columns=1)
        assert pairwise_intersections(matrix, []) == {}

    def test_empty_columns(self):
        from repro.baselines.bruteforce import pairwise_intersections

        matrix = BinaryMatrix([[0]], n_columns=3)
        assert pairwise_intersections(matrix, [(0, 2)]) == {(0, 2): 0}
