"""Synthetic dataset generators (repro.datasets)."""

import numpy as np
import pytest

from repro.baselines.bruteforce import (
    implication_rules_bruteforce,
    similarity_rules_bruteforce,
)
from repro.core.dmc_sim import find_similarity_rules
from repro.datasets.dictionary import SYNONYM_FAMILIES, generate_dictionary
from repro.datasets.news import (
    CHESS_RULE_FAMILIES,
    generate_news,
    generate_news_pruned,
)
from repro.datasets.registry import DATASETS, dataset_names, load_dataset
from repro.datasets.synthetic import (
    heavy_tail_row_sizes,
    planted_rule_matrix,
    planted_similarity_matrix,
    random_matrix,
    zipf_weights,
)
from repro.datasets.weblink import generate_weblink
from repro.datasets.weblog import generate_weblog, generate_weblog_pruned


class TestSyntheticPrimitives:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(49))

    def test_zipf_weights_invalid(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_random_matrix_density(self):
        matrix = random_matrix(200, 50, density=0.2, seed=1)
        observed = matrix.nnz / (200 * 50)
        assert 0.15 < observed < 0.25

    def test_planted_rule_matrix_has_planted_confidence(self):
        matrix = planted_rule_matrix(
            100, 10, rules=[(0, 1, 0.9)], seed=7
        )
        truth = implication_rules_bruteforce(matrix, 0.9)
        assert (0, 1) in truth.pairs()

    def test_planted_similarity_matrix_has_planted_pairs(self):
        matrix = planted_similarity_matrix(
            150, 12, groups=[([0, 1, 2], 0.8)], seed=7
        )
        truth = similarity_rules_bruteforce(matrix, 0.75)
        assert {(0, 1), (0, 2), (1, 2)} <= truth.pairs()

    def test_heavy_tail_sizes(self):
        rng = np.random.default_rng(0)
        sizes = heavy_tail_row_sizes(
            rng, 1000, typical=3, heavy_fraction=0.01, heavy_size=200
        )
        assert sizes.max() >= 100
        assert np.median(sizes) <= 10

    def test_heavy_tail_maximum_clamp(self):
        rng = np.random.default_rng(0)
        sizes = heavy_tail_row_sizes(
            rng, 100, typical=3, heavy_fraction=0.5, heavy_size=500,
            maximum=50,
        )
        assert sizes.max() <= 50


class TestWeblog:
    def test_shape_and_determinism(self):
        a = generate_weblog(n_clients=150, n_urls=60, seed=3)
        b = generate_weblog(n_clients=150, n_urls=60, seed=3)
        assert a == b
        assert a.n_rows == 150
        assert a.n_columns == 60

    def test_different_seeds_differ(self):
        a = generate_weblog(n_clients=100, n_urls=50, seed=1)
        b = generate_weblog(n_clients=100, n_urls=50, seed=2)
        assert a != b

    def test_crawlers_create_dense_rows(self):
        matrix = generate_weblog(
            n_clients=300, n_urls=100, crawler_fraction=0.01, seed=0
        )
        densities = matrix.row_densities()
        assert densities.max() > 60
        assert np.median(densities) < 15

    def test_bundles_create_high_confidence_rules(self):
        matrix = generate_weblog(
            n_clients=800, n_urls=120, n_bundles=4, bundle_size=3, seed=1
        )
        rules = implication_rules_bruteforce(matrix, 0.8)
        assert len(rules) > 0

    def test_has_vocabulary(self):
        matrix = generate_weblog(
            n_clients=50, n_urls=20, n_bundles=2, seed=0
        )
        assert matrix.vocabulary.label_of(0).startswith("/page/")

    def test_too_many_bundles_rejected(self):
        with pytest.raises(ValueError):
            generate_weblog(n_clients=10, n_urls=10, n_bundles=10,
                            bundle_size=5)

    def test_pruned_variant_removes_sparse_columns(self):
        pruned = generate_weblog_pruned(
            n_clients=400, n_urls=150, seed=0
        )
        full = generate_weblog(n_clients=400, n_urls=150, seed=0)
        assert pruned.n_columns < full.n_columns
        assert all(pruned.column_ones() >= 11)


class TestWeblink:
    def test_orientations_are_transposes(self):
        forward = generate_weblink(n_pages=80, orientation="F", seed=4)
        transposed = generate_weblink(n_pages=80, orientation="T", seed=4)
        assert forward.transpose() == transposed

    def test_invalid_orientation(self):
        with pytest.raises(ValueError):
            generate_weblink(n_pages=10, orientation="X")

    def test_frequency_mass_columns_exist(self):
        matrix = generate_weblink(
            n_pages=200,
            frequency_mass_columns=40,
            frequency_mass=4,
            orientation="F",
            seed=0,
        )
        ones = matrix.column_ones()
        assert int((ones == 4).sum()) >= 30

    def test_templates_create_similar_columns(self):
        # Keep the frequency-mass rewiring small relative to the page
        # count so it does not break up the planted templates.
        matrix = generate_weblink(
            n_pages=200,
            n_templates=4,
            template_pages=5,
            frequency_mass_columns=20,
            seed=2,
        )
        rules = find_similarity_rules(matrix, 0.85)
        assert len(rules) >= 4  # at least some template pairs survive

    def test_determinism(self):
        a = generate_weblink(n_pages=60, seed=9)
        b = generate_weblink(n_pages=60, seed=9)
        assert a == b


class TestNews:
    def test_chess_rules_planted(self):
        matrix = generate_news(n_documents=1500, seed=0)
        pruned = matrix.prune_columns_by_support(min_ones=5)
        rules = implication_rules_bruteforce(pruned, 0.85)
        vocabulary = pruned.vocabulary
        polgar = vocabulary.id_of("polgar")
        consequents = {
            vocabulary.label_of(rule.consequent)
            for rule in rules
            if rule.antecedent == polgar
        }
        # Most of the Figure 7 consequents must be implied by 'polgar'.
        expected = set(CHESS_RULE_FAMILIES["polgar"])
        assert len(consequents & expected) >= len(expected) * 0.7

    def test_vocabulary_contains_topic_words(self):
        matrix = generate_news(n_documents=100, seed=1)
        assert "kasparov" in matrix.vocabulary

    def test_determinism(self):
        assert generate_news(n_documents=200, seed=5) == generate_news(
            n_documents=200, seed=5
        )

    def test_pruned_variant_support_bounds(self):
        matrix = generate_news_pruned(
            n_documents=500, minsup_count=4, seed=0
        )
        ones = matrix.column_ones()
        assert all(ones >= 4)
        assert all(ones <= 0.2 * matrix.n_rows)


class TestDictionary:
    def test_synonyms_are_similar(self):
        matrix = generate_dictionary(
            n_head_words=300, n_definition_words=200, seed=0
        )
        rules = find_similarity_rules(matrix, 0.7)
        vocabulary = matrix.vocabulary
        found_pairs = {
            frozenset(
                (vocabulary.label_of(r.first), vocabulary.label_of(r.second))
            )
            for r in rules
        }
        assert (
            frozenset(("brother-in-law", "sister-in-law")) in found_pairs
        )

    def test_all_families_recovered(self):
        matrix = generate_dictionary(seed=1)
        rules = find_similarity_rules(matrix, 0.6)
        vocabulary = matrix.vocabulary
        similar = {
            frozenset((r.first, r.second)) for r in rules
        }
        for family in SYNONYM_FAMILIES:
            ids = [vocabulary.id_of(w) for w in family]
            for i in range(len(ids)):
                for j in range(i + 1, len(ids)):
                    assert frozenset((ids[i], ids[j])) in similar, family

    def test_too_many_family_members_rejected(self):
        with pytest.raises(ValueError):
            generate_dictionary(
                n_head_words=3,
                families=[("a", "b"), ("c", "d")],
            )


class TestRegistry:
    def test_names_match_table1(self):
        assert dataset_names() == (
            "Wlog", "WlogP", "plinkF", "plinkT", "News", "NewsP", "dicD",
        )

    def test_all_specs_build_at_small_scale(self):
        for name, spec in DATASETS.items():
            matrix = spec.build(scale=0.2, seed=0)
            assert matrix.n_rows > 0, name
            assert matrix.nnz > 0, name

    def test_paper_sizes_recorded(self):
        assert DATASETS["plinkF"].paper_columns == 697824
        assert DATASETS["Wlog"].paper_rows == 218518

    def test_load_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_load_dataset_deterministic(self):
        assert load_dataset("dicD", scale=0.3, seed=2) == load_dataset(
            "dicD", scale=0.3, seed=2
        )
