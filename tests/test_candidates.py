"""The counter array (repro.core.candidates)."""

from repro.core.candidates import (
    BYTES_PER_ENTRY,
    BYTES_PER_LIST,
    CandidateArray,
)


class TestLifecycle:
    def test_ensure_creates_once(self):
        cand = CandidateArray()
        first = cand.ensure(3)
        assert cand.ensure(3) is first
        assert cand.has_list(3)

    def test_get_missing_is_none(self):
        assert CandidateArray().get(0) is None

    def test_release_clears_entries(self):
        cand = CandidateArray()
        cand.ensure(0)
        cand.add(0, 1, 0)
        cand.release(0)
        assert cand.total_entries == 0
        assert not cand.has_list(0)

    def test_release_is_idempotent(self):
        cand = CandidateArray()
        cand.release(0)
        assert cand.total_entries == 0

    def test_open_columns(self):
        cand = CandidateArray()
        cand.ensure(2)
        cand.ensure(5)
        assert set(cand.open_columns()) == {2, 5}


class TestEntries:
    def test_add_and_items(self):
        cand = CandidateArray()
        cand.ensure(0)
        cand.add(0, 1, 2)
        assert list(cand.items(0)) == [(1, 2)]

    def test_remove(self):
        cand = CandidateArray()
        cand.ensure(0)
        cand.add(0, 1, 0)
        cand.remove(0, 1)
        assert cand.total_entries == 0
        assert list(cand.items(0)) == []

    def test_items_of_missing_column_is_empty(self):
        assert list(CandidateArray().items(9)) == []

    def test_total_entries_across_lists(self):
        cand = CandidateArray()
        for column in (0, 1):
            cand.ensure(column)
            cand.add(column, 5, 0)
        assert cand.total_entries == 2


class TestMemoryModel:
    def test_memory_bytes_formula(self):
        cand = CandidateArray()
        cand.ensure(0)
        cand.add(0, 1, 0)
        cand.add(0, 2, 0)
        assert cand.memory_bytes() == 2 * BYTES_PER_ENTRY + BYTES_PER_LIST

    def test_peaks_are_monotone(self):
        cand = CandidateArray()
        cand.ensure(0)
        for k in range(1, 6):
            cand.add(0, k, 0)
        peak_before = cand.peak_bytes
        cand.release(0)
        assert cand.peak_bytes == peak_before
        assert cand.peak_entries == 5

    def test_peak_tracks_high_watermark(self):
        cand = CandidateArray()
        cand.ensure(0)
        cand.add(0, 1, 0)
        cand.remove(0, 1)
        cand.add(0, 2, 0)
        assert cand.peak_entries == 1
        assert cand.total_entries == 1

    def test_repr(self):
        cand = CandidateArray()
        cand.ensure(0)
        assert "lists=1" in repr(cand)
