"""Instrumentation types (repro.core.stats)."""

import time

from repro.core.stats import PhaseTimer, PipelineStats, ScanStats


class TestScanStats:
    def test_record_row_tracks_peaks(self):
        stats = ScanStats()
        stats.record_row(5, 100)
        stats.record_row(3, 60)
        stats.record_row(9, 200)
        assert stats.peak_entries == 9
        assert stats.peak_bytes == 200
        assert stats.rows_scanned == 3
        assert stats.candidate_history == [5, 3, 9]

    def test_merge_peaks(self):
        a = ScanStats()
        a.record_row(5, 100)
        a.candidates_added = 7
        b = ScanStats()
        b.record_row(9, 50)
        b.candidates_added = 3
        b.bitmap_seconds = 0.5
        a.merge_peaks(b)
        assert a.peak_entries == 9
        assert a.peak_bytes == 100
        assert a.candidates_added == 10
        assert a.rows_scanned == 2
        assert a.bitmap_seconds == 0.5

    def test_defaults(self):
        stats = ScanStats()
        assert stats.bitmap_switch_at is None
        assert stats.rules_emitted == 0


class TestPhaseTimer:
    def test_phase_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            time.sleep(0.01)
        with timer.phase("work"):
            time.sleep(0.01)
        assert timer.seconds["work"] >= 0.02
        assert timer.total() == timer.seconds["work"]

    def test_phase_records_on_exception(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in timer.seconds

    def test_multiple_phases(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.seconds) == {"a", "b"}


class TestPipelineStats:
    def test_peaks_span_both_scans(self):
        stats = PipelineStats()
        stats.hundred_percent_scan.record_row(3, 30)
        stats.partial_scan.record_row(7, 70)
        assert stats.peak_entries == 7
        assert stats.peak_bytes == 70

    def test_breakdown_mirrors_timer(self):
        stats = PipelineStats()
        with stats.timer.phase("pre-scan"):
            pass
        assert list(stats.breakdown()) == ["pre-scan"]
        assert stats.total_seconds == stats.timer.total()
