"""Rule value types and RuleSet semantics (repro.core.rules)."""

from fractions import Fraction

import pytest

from repro.core.rules import (
    ImplicationRule,
    RuleSet,
    SimilarityRule,
    canonical_before,
)
from repro.matrix.binary_matrix import Vocabulary


class TestCanonicalBefore:
    def test_fewer_ones_comes_first(self):
        assert canonical_before(3, 9, 5, 1)

    def test_more_ones_comes_later(self):
        assert not canonical_before(5, 1, 3, 9)

    def test_tie_broken_by_column_id(self):
        assert canonical_before(4, 1, 4, 2)
        assert not canonical_before(4, 2, 4, 1)

    def test_self_is_not_before_itself(self):
        assert not canonical_before(4, 1, 4, 1)


class TestImplicationRule:
    def test_confidence_is_exact_fraction(self):
        rule = ImplicationRule(0, 1, hits=17, ones=20)
        assert rule.confidence == Fraction(17, 20)

    def test_misses(self):
        rule = ImplicationRule(0, 1, hits=17, ones=20)
        assert rule.misses == 3

    def test_pair(self):
        assert ImplicationRule(3, 7, 4, 5).pair == (3, 7)

    def test_format_without_vocabulary(self):
        assert ImplicationRule(0, 1, 1, 1).format() == "c0 -> c1 (1.000)"

    def test_format_with_vocabulary(self):
        vocabulary = Vocabulary(["polgar", "chess"])
        rule = ImplicationRule(0, 1, hits=9, ones=10)
        assert rule.format(vocabulary) == "polgar -> chess (0.900)"

    def test_frozen(self):
        rule = ImplicationRule(0, 1, 1, 1)
        with pytest.raises(AttributeError):
            rule.hits = 2

    def test_equality_and_hash(self):
        a = ImplicationRule(0, 1, 4, 5)
        b = ImplicationRule(0, 1, 4, 5)
        assert a == b and hash(a) == hash(b)


class TestSimilarityRule:
    def test_similarity_is_exact_fraction(self):
        rule = SimilarityRule(2, 5, intersection=3, union=4)
        assert rule.similarity == Fraction(3, 4)

    def test_pair(self):
        assert SimilarityRule(2, 5, 3, 4).pair == (2, 5)

    def test_format_with_vocabulary(self):
        vocabulary = Vocabulary(["a", "b", "big", "large"])
        rule = SimilarityRule(2, 3, intersection=1, union=2)
        assert rule.format(vocabulary) == "big ~ large (0.500)"

    def test_ordering_is_deterministic(self):
        rules = [SimilarityRule(1, 2, 1, 2), SimilarityRule(0, 3, 1, 2)]
        assert sorted(rules)[0].first == 0


class TestRuleSet:
    def test_add_and_len(self):
        rules = RuleSet()
        rules.add(ImplicationRule(0, 1, 4, 5))
        assert len(rules) == 1

    def test_duplicate_identical_is_ignored(self):
        rules = RuleSet()
        rules.add(ImplicationRule(0, 1, 4, 5))
        rules.add(ImplicationRule(0, 1, 4, 5))
        assert len(rules) == 1

    def test_conflicting_duplicate_raises(self):
        rules = RuleSet([ImplicationRule(0, 1, 4, 5)])
        with pytest.raises(ValueError):
            rules.add(ImplicationRule(0, 1, 3, 5))

    def test_pairs(self):
        rules = RuleSet([ImplicationRule(0, 1, 4, 5)])
        assert rules.pairs() == {(0, 1)}

    def test_contains_and_getitem(self):
        rule = ImplicationRule(0, 1, 4, 5)
        rules = RuleSet([rule])
        assert (0, 1) in rules
        assert rules[(0, 1)] is rule

    def test_sorted_is_stable_by_pair(self):
        rules = RuleSet(
            [
                ImplicationRule(2, 3, 1, 1),
                ImplicationRule(0, 9, 1, 1),
                ImplicationRule(0, 1, 1, 1),
            ]
        )
        assert [r.pair for r in rules.sorted()] == [
            (0, 1), (0, 9), (2, 3),
        ]

    def test_update(self):
        rules = RuleSet()
        rules.update([ImplicationRule(0, 1, 1, 1), ImplicationRule(1, 2, 1, 1)])
        assert len(rules) == 2

    def test_equality(self):
        a = RuleSet([ImplicationRule(0, 1, 1, 1)])
        b = RuleSet([ImplicationRule(0, 1, 1, 1)])
        assert a == b

    def test_iter(self):
        rules = RuleSet([ImplicationRule(0, 1, 1, 1)])
        assert [r.pair for r in rules] == [(0, 1)]
