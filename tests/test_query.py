"""Rule querying (repro.mining.query)."""

from fractions import Fraction

import pytest

from repro.core.rules import ImplicationRule, RuleSet, SimilarityRule
from repro.matrix.binary_matrix import Vocabulary
from repro.mining.query import RuleQuery


@pytest.fixture
def rules():
    return RuleSet(
        [
            ImplicationRule(0, 1, hits=10, ones=10),   # conf 1
            ImplicationRule(0, 2, hits=9, ones=10),    # conf 0.9
            ImplicationRule(3, 1, hits=6, ones=10),    # conf 0.6
            ImplicationRule(2, 4, hits=8, ones=10),    # conf 0.8
        ]
    )


@pytest.fixture
def vocabulary():
    return Vocabulary(["polgar", "chess", "judit", "soviet", "game"])


class TestFilters:
    def test_involving(self, rules):
        assert RuleQuery(rules).involving(1).count() == 2

    def test_from_antecedent(self, rules):
        pairs = {
            rule.pair
            for rule in RuleQuery(rules).from_antecedent(0)
        }
        assert pairs == {(0, 1), (0, 2)}

    def test_to_consequent(self, rules):
        pairs = {
            rule.pair for rule in RuleQuery(rules).to_consequent(1)
        }
        assert pairs == {(0, 1), (3, 1)}

    def test_at_least(self, rules):
        assert RuleQuery(rules).at_least(0.8).count() == 3

    def test_below(self, rules):
        assert RuleQuery(rules).below(0.8).count() == 1

    def test_exact_only(self, rules):
        exact = list(RuleQuery(rules).exact_only())
        assert [rule.pair for rule in exact] == [(0, 1)]

    def test_chaining_intersects(self, rules):
        query = RuleQuery(rules).involving(0).at_least(0.95)
        assert {rule.pair for rule in query} == {(0, 1)}

    def test_where_arbitrary_predicate(self, rules):
        query = RuleQuery(rules).where(lambda rule: rule.hits == 9)
        assert [rule.pair for rule in query] == [(0, 2)]

    def test_chaining_does_not_mutate_parent(self, rules):
        base = RuleQuery(rules)
        base.at_least(0.99)
        assert base.count() == 4


class TestLabels:
    def test_label_resolution(self, rules, vocabulary):
        query = RuleQuery(rules, vocabulary).from_antecedent("polgar")
        assert query.count() == 2

    def test_label_matches(self, rules, vocabulary):
        query = RuleQuery(rules, vocabulary).label_matches(
            lambda label: label.startswith("j")
        )
        assert {rule.pair for rule in query} == {(0, 2), (2, 4)}

    def test_label_without_vocabulary_rejected(self, rules):
        with pytest.raises(ValueError):
            RuleQuery(rules).from_antecedent("polgar")
        with pytest.raises(ValueError):
            RuleQuery(rules).label_matches(lambda label: True)


class TestMaterialization:
    def test_to_rule_set(self, rules):
        narrowed = RuleQuery(rules).at_least(0.9).to_rule_set()
        assert narrowed.pairs() == {(0, 1), (0, 2)}

    def test_strongest_orders_by_strength(self, rules):
        strongest = RuleQuery(rules).strongest(limit=2)
        assert [rule.pair for rule in strongest] == [(0, 1), (0, 2)]

    def test_works_with_similarity_rules(self):
        rules = RuleSet(
            [
                SimilarityRule(0, 1, intersection=3, union=4),
                SimilarityRule(1, 2, intersection=1, union=4),
            ]
        )
        query = RuleQuery(rules).at_least(Fraction(1, 2))
        assert [rule.pair for rule in query] == [(0, 1)]
