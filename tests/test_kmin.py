"""K-Min bottom-k confidence estimation (repro.baselines.kmin)."""

from repro.baselines.bruteforce import implication_rules_bruteforce
from repro.baselines.kmin import bottom_k_samples, kmin_implication_rules
from repro.datasets.synthetic import planted_rule_matrix
from repro.matrix.binary_matrix import BinaryMatrix
from tests.conftest import random_binary_matrix


class TestBottomK:
    def test_sample_is_subset_of_column(self):
        matrix = random_binary_matrix(1)
        samples = bottom_k_samples(matrix, k=5)
        for column, sample in samples.items():
            assert set(sample) <= matrix.column_set(column)

    def test_sample_size_capped_at_k(self):
        matrix = BinaryMatrix([[0]] * 20, n_columns=1)
        samples = bottom_k_samples(matrix, k=5)
        assert len(samples[0]) == 5

    def test_small_column_fully_sampled(self):
        matrix = BinaryMatrix([[0]] * 3, n_columns=1)
        samples = bottom_k_samples(matrix, k=10)
        assert len(samples[0]) == 3

    def test_empty_columns_skipped(self):
        matrix = BinaryMatrix([[0]], n_columns=2)
        assert 1 not in bottom_k_samples(matrix, k=4)

    def test_deterministic_per_seed(self):
        matrix = random_binary_matrix(4)
        assert bottom_k_samples(matrix, 4, seed=9) == bottom_k_samples(
            matrix, 4, seed=9
        )


class TestMining:
    def test_no_false_positives_ever(self):
        for seed in range(8):
            matrix = random_binary_matrix(seed)
            truth = implication_rules_bruteforce(matrix, 0.7)
            result = kmin_implication_rules(matrix, 0.7, k=8, seed=seed)
            assert result.rules.pairs() <= truth.pairs(), seed

    def test_full_sampling_finds_everything(self):
        """With k >= n the sample is exact, so there are no misses."""
        for seed in range(6):
            matrix = random_binary_matrix(seed)
            truth = implication_rules_bruteforce(matrix, 0.75)
            result = kmin_implication_rules(
                matrix, 0.75, k=matrix.n_rows + 1, slack=0.0
            )
            assert result.false_negatives(truth) == set(), seed

    def test_planted_rules_recovered(self):
        matrix = planted_rule_matrix(
            150, 12, rules=[(0, 1, 0.95), (2, 3, 0.9)], seed=4
        )
        truth = implication_rules_bruteforce(matrix, 0.85)
        result = kmin_implication_rules(matrix, 0.85, k=60, seed=0)
        assert result.false_negative_rate(truth) <= 0.1

    def test_false_negative_rate_empty_truth(self):
        matrix = BinaryMatrix([[0], [1]], n_columns=2)
        truth = implication_rules_bruteforce(matrix, 1)
        result = kmin_implication_rules(matrix, 1, k=4)
        assert result.false_negative_rate(truth) == 0.0

    def test_diagnostics(self):
        matrix = random_binary_matrix(3)
        result = kmin_implication_rules(matrix, 0.6, k=7)
        assert result.k == 7
        assert result.candidates_checked >= len(result.rules)
