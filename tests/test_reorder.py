"""Row re-ordering by density buckets (repro.matrix.reorder, Section 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matrix.binary_matrix import BinaryMatrix
from repro.matrix.reorder import (
    bucket_index,
    density_buckets,
    exact_sparsest_order,
    order_is_valid,
    scan_order,
)


class TestBucketIndex:
    def test_powers_of_two_open_new_buckets(self):
        assert bucket_index(1) == 0
        assert bucket_index(2) == 1
        assert bucket_index(3) == 1
        assert bucket_index(4) == 2
        assert bucket_index(7) == 2
        assert bucket_index(8) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            bucket_index(0)

    @given(density=st.integers(min_value=1, max_value=10**9))
    def test_bucket_range_invariant(self, density):
        bucket = bucket_index(density)
        assert 2 ** bucket <= density < 2 ** (bucket + 1)


class TestDensityBuckets:
    def test_rows_grouped_by_range(self):
        matrix = BinaryMatrix(
            [[0], [0, 1, 2], [0, 1], [], [0, 1, 2, 3]], n_columns=4
        )
        buckets = density_buckets(matrix)
        assert buckets[0] == [0]          # density 1
        assert buckets[1] == [1, 2]       # densities 3 and 2
        assert buckets[2] == [4]          # density 4

    def test_empty_rows_dropped(self):
        matrix = BinaryMatrix([[], []], n_columns=3)
        assert density_buckets(matrix) == []

    def test_bucket_count_bound(self):
        """No more than ceil(log2(m)) + 1 buckets (paper Section 4.1)."""
        matrix = BinaryMatrix([[c for c in range(100)]], n_columns=100)
        assert len(density_buckets(matrix)) <= 100 .bit_length() + 1

    def test_original_order_within_bucket(self):
        matrix = BinaryMatrix([[0, 1], [2, 3], [4, 5]], n_columns=6)
        assert density_buckets(matrix)[1] == [0, 1, 2]


class TestScanOrder:
    def test_sparsest_first(self):
        matrix = BinaryMatrix(
            [[0, 1, 2, 3], [0], [1, 2]], n_columns=4
        )
        assert scan_order(matrix) == [1, 2, 0]

    def test_original_order_skips_empty_rows(self):
        matrix = BinaryMatrix([[0], [], [1]], n_columns=2)
        assert scan_order(matrix, sparsest_first=False) == [0, 2]

    def test_order_is_always_valid(self):
        matrix = BinaryMatrix(
            [[0, 1], [], [2], [0, 1, 2]], n_columns=3
        )
        for sparsest in (True, False):
            assert order_is_valid(matrix, scan_order(matrix, sparsest))

    def test_exact_sparsest_order_is_sorted_by_density(self):
        matrix = BinaryMatrix(
            [[0, 1, 2], [0], [1, 2], []], n_columns=3
        )
        order = exact_sparsest_order(matrix)
        densities = [len(matrix.row(r)) for r in order]
        assert densities == sorted(densities)
        assert order_is_valid(matrix, order)

    def test_order_is_valid_rejects_duplicates(self):
        matrix = BinaryMatrix([[0], [1]], n_columns=2)
        assert not order_is_valid(matrix, [0, 0])

    def test_order_is_valid_rejects_missing_rows(self):
        matrix = BinaryMatrix([[0], [1]], n_columns=2)
        assert not order_is_valid(matrix, [0])

    def test_paper_example31_exact_order(self):
        """Example 3.1's sparsest order (r1,r3,r8,r2,r5,r4,r6,r9,r7)."""
        from tests.conftest import (
            EXAMPLE31_ROWS,
            EXAMPLE31_SPARSEST_ORDER,
        )

        matrix = BinaryMatrix(EXAMPLE31_ROWS, n_columns=6)
        assert exact_sparsest_order(matrix) == list(
            EXAMPLE31_SPARSEST_ORDER
        )

    def test_bucketed_order_never_increases_bucket(self):
        matrix = BinaryMatrix(
            [[0, 1, 2, 3, 4], [0], [1, 2], [3], [0, 1]], n_columns=5
        )
        order = scan_order(matrix)
        buckets = [bucket_index(len(matrix.row(r))) for r in order]
        assert buckets == sorted(buckets)
