#!/usr/bin/env python
"""Two-pass streaming over an on-disk transactions file.

The paper's selling point is "only two passes through the data and
realistic amounts of main memory".  This example writes a data set to
disk, then mines it without ever holding the matrix in memory: pass 1
counts column frequencies while spilling rows into density-bucket
files (Section 4.1's bucketing), pass 2 replays the buckets
sparsest-first through the miss-counting engine.

Run:  python examples/streaming_two_pass.py
"""

import os
import tempfile

from repro import find_implication_rules, load_dataset
from repro.matrix.io import save_transactions
from repro.matrix.stream import FileSource, stream_implication_rules


def main() -> None:
    matrix = load_dataset("Wlog", scale=1.0, seed=2)
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "weblog.txt")
        # Streaming mode works on numeric ids; strip the vocabulary.
        matrix.vocabulary = None
        save_transactions(matrix, path)
        size_kb = os.path.getsize(path) / 1024
        print(f"wrote {matrix.n_rows} rows to {path} ({size_kb:.0f} KiB)")

        rules = stream_implication_rules(FileSource(path), minconf=0.9)
        print(f"streamed two passes: {len(rules)} rules at 90% confidence")

        # Equivalent to the in-memory pipeline, rule for rule.
        in_memory = find_implication_rules(matrix, 0.9)
        assert rules.pairs() == in_memory.pairs()
        print("verified: identical to the in-memory pipeline")

        strongest = [r for r in rules.sorted() if r.ones >= 12][:5]
        print("\nsample rules from well-supported antecedents:")
        for rule in strongest:
            print(f"  {rule.format()}")


if __name__ == "__main__":
    main()
