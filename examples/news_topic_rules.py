#!/usr/bin/env python
"""Figure 7's text-mining demo: rules around a keyword in news articles.

Mines implication rules from a synthetic Reuters-like corpus at 85%
confidence (with columns of support < 5 pruned, as under the paper's
figure), then expands the rule graph recursively from the keyword
"polgar" — reproducing the paper's chess-story rule families.

Run:  python examples/news_topic_rules.py
"""

from repro import find_implication_rules
from repro.datasets.news import generate_news
from repro.mining.grouping import expand_keyword, format_rules


def main() -> None:
    corpus = generate_news(n_documents=6000, seed=11)
    print(
        f"corpus: {corpus.n_rows} documents, "
        f"{corpus.n_columns} distinct words"
    )

    # The paper prunes support-<5 columns for this experiment: words in
    # fewer than five documents can't make stable rules anyway.
    pruned = corpus.prune_columns_by_support(min_ones=5)
    print(f"after support-5 pruning: {pruned.n_columns} words")

    rules = find_implication_rules(pruned, minconf=0.85)
    print(f"mined {len(rules)} rules at 85% confidence\n")

    expanded = expand_keyword(
        rules, "polgar", vocabulary=pruned.vocabulary, max_depth=2
    )
    print(
        f"rules reachable within two hops of 'polgar' "
        f"({len(expanded)} rules):\n"
    )
    print(format_rules(expanded, pruned.vocabulary, columns=3))


if __name__ == "__main__":
    main()
