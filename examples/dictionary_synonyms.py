#!/usr/bin/env python
"""The paper's dictionary use case: find head words defined alike.

Columns are head words, rows are definition words; similar columns are
words whose definitions use nearly the same vocabulary ("brother-in-law"
and "sister-in-law" in the paper).  The example also contrasts DMC-sim
with Min-Hash on the same task: Min-Hash is approximate and can miss
pairs, DMC-sim never does.

Run:  python examples/dictionary_synonyms.py
"""

from repro import find_similarity_rules, minhash_similarity_rules
from repro.datasets.dictionary import generate_dictionary


def main() -> None:
    dictionary = generate_dictionary(
        n_head_words=1200, n_definition_words=600, seed=3
    )
    print(
        f"dictionary: {dictionary.n_columns} head words defined with "
        f"{dictionary.n_rows} distinct definition words"
    )

    rules = find_similarity_rules(dictionary, minsim=0.7)
    print(f"\nDMC-sim found {len(rules)} synonym candidates at 70%:")
    for rule in sorted(
        rules, key=lambda r: -r.similarity
    )[:10]:
        print("  " + rule.format(dictionary.vocabulary))

    # Min-Hash on the same task: exact verification means no false
    # positives, but candidates below the estimate cut are lost.
    minhash = minhash_similarity_rules(dictionary, 0.7, k=50, seed=1)
    missed = minhash.false_negatives(rules)
    print(
        f"\nMin-Hash (k=50) reported {len(minhash.rules)} pairs, "
        f"missing {len(missed)} true pairs; DMC-sim misses none"
    )


if __name__ == "__main__":
    main()
