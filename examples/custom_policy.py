#!/usr/bin/env python
"""Extending DMC with a custom rule semantics: Dice-coefficient pairs.

The scan engine is policy-driven: implication, similarity, and
identical-column mining are each a :class:`PairPolicy`.  This example
adds a fourth from scratch — pairs whose *Dice coefficient*
``2|A∩B| / (|A|+|B|)`` clears a threshold — by deriving the exact
sparse-side miss budget the same way Section 5 derives Jaccard's:

    dice >= p/q
      <=>  2*(ones_i - miss_i) * q >= p * (ones_i + ones_j)
      <=>  miss_i <= (2*q*ones_i - p*(ones_i + ones_j)) / (2*q)

The result is verified against a brute-force computation.

Run:  python examples/custom_policy.py
"""

from fractions import Fraction

from repro import BinaryMatrix, load_dataset
from repro.core.miss_counting import miss_counting_scan
from repro.core.policies import PairPolicy
from repro.core.rules import SimilarityRule


class DicePolicy(PairPolicy):
    """Mine pairs with Dice coefficient >= ``min_dice``, exactly."""

    def __init__(self, ones, min_dice: Fraction) -> None:
        super().__init__(ones)
        self.min_dice = Fraction(min_dice)

    def pair_budget(self, column_j: int, candidate_k: int) -> int:
        p, q = self.min_dice.numerator, self.min_dice.denominator
        ones_j, ones_k = self.ones[column_j], self.ones[candidate_k]
        return (2 * q * ones_j - p * (ones_j + ones_k)) // (2 * q)

    def add_cutoff(self, column_j: int) -> int:
        # Best case: a candidate with the same cardinality.
        return self.pair_budget(column_j, column_j)

    def make_rule(self, column_j, candidate_k, misses):
        intersection = self.ones[column_j] - misses
        total = self.ones[column_j] + self.ones[candidate_k]
        if 2 * intersection * self.min_dice.denominator < (
            self.min_dice.numerator * total
        ):
            return None
        return SimilarityRule(
            first=column_j,
            second=candidate_k,
            intersection=intersection,
            union=total - intersection,
        )


def dice_bruteforce(matrix: BinaryMatrix, min_dice: Fraction):
    """Oracle: all-pairs Dice via column sets."""
    sets = matrix.column_sets()
    ones = matrix.column_ones()
    pairs = set()
    for i in range(matrix.n_columns):
        for j in range(i + 1, matrix.n_columns):
            inter = len(sets[i] & sets[j])
            total = int(ones[i]) + int(ones[j])
            if total and Fraction(2 * inter, total) >= min_dice:
                pairs.add(tuple(sorted((i, j))))
    return pairs


def main() -> None:
    matrix = load_dataset("dicD", scale=0.6, seed=4)
    threshold = Fraction(4, 5)

    policy = DicePolicy(matrix.column_ones(), threshold)
    rules = miss_counting_scan(matrix, policy)
    mined = {tuple(sorted(rule.pair)) for rule in rules}
    print(
        f"DMC with a custom Dice policy: {len(mined)} pairs at "
        f"dice >= {threshold}"
    )

    truth = dice_bruteforce(matrix, threshold)
    assert mined == truth, "custom policy must be exact"
    print("verified against brute force: exact match")

    for rule in rules.sorted()[:8]:
        dice_value = Fraction(
            2 * rule.intersection, rule.union + rule.intersection
        )
        print(
            f"  {rule.format(matrix.vocabulary)}  "
            f"dice={float(dice_value):.3f}"
        )


if __name__ == "__main__":
    main()
