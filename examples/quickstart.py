#!/usr/bin/env python
"""Quickstart: mine implication and similarity rules from transactions.

Run:  python examples/quickstart.py
"""

from repro import (
    BinaryMatrix,
    find_implication_rules,
    find_similarity_rules,
)


def main() -> None:
    # A toy market-basket data set.  Rows are baskets, columns items.
    baskets = [
        ["bread", "butter"],
        ["bread", "butter", "jam"],
        ["bread", "butter", "milk"],
        ["bread", "milk"],
        ["beer", "chips"],
        ["beer", "chips", "salsa"],
        ["beer", "chips"],
        ["salsa", "chips"],
        ["milk"],
        ["jam", "butter"],
    ]
    matrix = BinaryMatrix.from_transactions(baskets)
    print(
        f"matrix: {matrix.n_rows} baskets x {matrix.n_columns} items, "
        f"{matrix.nnz} entries\n"
    )

    # Implication rules: "customers who buy X almost always buy Y".
    # DMC needs no support threshold — rare items participate too.
    print("implication rules at 75% confidence:")
    for rule in find_implication_rules(matrix, minconf=0.75).sorted():
        print("  " + rule.format(matrix.vocabulary))

    # Similarity rules: items bought by nearly the same baskets.
    print("\nsimilar item pairs at 50% Jaccard similarity:")
    for rule in find_similarity_rules(matrix, minsim=0.5).sorted():
        print("  " + rule.format(matrix.vocabulary))

    # Everything is exact: confidences are fractions, not floats.
    rules = find_implication_rules(matrix, minconf=0.75)
    example = rules.sorted()[0]
    print(
        f"\nexact confidence of {example.format(matrix.vocabulary)}: "
        f"{example.hits}/{example.ones} = {example.confidence}"
    )


if __name__ == "__main__":
    main()
