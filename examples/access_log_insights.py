#!/usr/bin/env python
"""Web-access-log mining with memory instrumentation (Sections 4 and 6).

Mines the synthetic Wlog data set and shows the machinery the paper's
evaluation measures: the sparsest-first row re-ordering's memory
savings, the phase breakdown, and the effect of the DMC-bitmap switch —
then prints the strongest navigation rules.

Run:  python examples/access_log_insights.py
"""

from repro import (
    BitmapConfig,
    PipelineStats,
    PruningOptions,
    find_implication_rules,
)
from repro.datasets.weblog import generate_weblog


def main() -> None:
    log = generate_weblog(n_clients=4000, n_urls=900, seed=5)
    print(
        f"access log: {log.n_rows} clients x {log.n_columns} URLs, "
        f"{log.nnz} hits"
    )
    densities = log.row_densities()
    print(
        f"row densities: median {int(sorted(densities)[len(densities)//2])}"
        f", max {int(densities.max())} (crawlers)"
    )

    # Section 4.1: scanning sparsest rows first cuts peak memory.
    peaks = {}
    for label, reorder in (("original", False), ("sparsest-first", True)):
        stats = PipelineStats()
        find_implication_rules(
            log,
            1,
            options=PruningOptions(row_reordering=reorder, bitmap=None),
            stats=stats,
        )
        peaks[label] = stats.peak_bytes
        print(f"100%-rule pass, {label:15s}: peak {stats.peak_bytes:,} B")
    print(
        f"re-ordering saves "
        f"{peaks['original'] / peaks['sparsest-first']:.1f}x memory"
    )

    # Full pipeline at 85% with a scaled DMC-bitmap switch.
    options = PruningOptions(
        bitmap=BitmapConfig(switch_rows=64, memory_budget_bytes=32 * 1024)
    )
    stats = PipelineStats()
    rules = find_implication_rules(log, 0.85, options=options, stats=stats)
    print(f"\nmined {len(rules)} rules at 85% confidence; phase breakdown:")
    for phase, seconds in stats.breakdown().items():
        print(f"  {phase:12s} {seconds:7.3f}s")
    switched = stats.partial_scan.bitmap_switch_at is not None
    print(f"DMC-bitmap tail engaged: {switched}")

    print("\nstrongest navigation rules among popular pages:")
    ones = log.column_ones()
    strong = [
        rule
        for rule in rules
        if ones[rule.antecedent] >= 15 and rule.confidence >= 0.95
    ]
    for rule in sorted(strong, key=lambda r: -int(ones[r.antecedent]))[:8]:
        print(
            f"  {rule.format(log.vocabulary)} "
            f"[antecedent visits: {ones[rule.antecedent]}]"
        )


if __name__ == "__main__":
    main()
