#!/usr/bin/env python
"""Example 1.1 from the paper: find similar pages in a web-link graph.

The page-link graph becomes a binary matrix (rows = sources, columns =
destinations for plinkF; transposed for plinkT).  Mining similar
columns of plinkT finds pages with near-identical out-link sets —
template/mirror pages — which support pruning would miss because most
pages have only a handful of links.

Run:  python examples/web_similarity.py
"""

from repro import PruningOptions, find_similarity_rules
from repro.core.stats import PipelineStats
from repro.datasets.weblink import generate_weblink
from repro.mining.grouping import similarity_components


def main() -> None:
    matrix = generate_weblink(
        n_pages=1500,
        n_templates=12,
        template_pages=6,
        orientation="T",
        seed=7,
    )
    print(
        f"link graph: {matrix.n_rows} x {matrix.n_columns}, "
        f"{matrix.nnz} links"
    )

    stats = PipelineStats()
    rules = find_similarity_rules(
        matrix, minsim=0.8, options=PruningOptions(), stats=stats
    )
    print(
        f"mined {len(rules)} similar page pairs at 80% similarity "
        f"in {stats.total_seconds:.2f}s "
        f"(peak counter memory: {stats.peak_bytes:,} bytes)"
    )

    # Group pairwise-similar pages into clusters (Section 7's idea).
    clusters = similarity_components(rules)
    print(f"\n{len(clusters)} page clusters; largest five:")
    for cluster in clusters[:5]:
        pages = sorted(
            matrix.vocabulary.label_of(page) for page in cluster
        )
        preview = ", ".join(pages[:4])
        suffix = ", ..." if len(pages) > 4 else ""
        print(f"  {len(pages):3d} pages: {preview}{suffix}")

    # Low-support pages participate: show the sparsest mined pair.
    ones = matrix.column_ones()
    sparsest = min(rules, key=lambda r: int(ones[r.first]))
    print(
        f"\nsparsest similar pair: {sparsest.format(matrix.vocabulary)} "
        f"with only {ones[sparsest.first]} in-matrix links — a pair "
        "support pruning would have discarded"
    )


if __name__ == "__main__":
    main()
